//! Sortie splitting under a charger battery budget.
//!
//! The paper treats the mobile charger's energy as unbounded; its
//! reference scenario (Li et al.'s *Qi-ferry*) is the energy-constrained
//! version, where the charger carries a finite battery and must return
//! to the base station to swap/recharge before continuing. This module
//! extends any [`ChargingPlan`] to that setting: the fixed stop order is
//! split into consecutive **sorties**, each departing from and returning
//! to the base station, such that no sortie's energy (driving, including
//! the base legs, plus dwell) exceeds the budget and the added return
//! mileage is minimal.
//!
//! With the visiting order fixed by the underlying planner, the optimal
//! split is the classical route-first / cluster-second dynamic program:
//! `best[j] = min over feasible segments (i..j] of best[i] + cost(i, j)`.

use std::fmt;

use bc_geom::Point;
use bc_units::{Joules, Meters, Seconds};
use bc_wpt::EnergyModel;

use crate::{ChargingPlan, Stop};

/// One sortie: a contiguous run of stops flown base → stops → base.
#[derive(Debug, Clone, PartialEq)]
pub struct Sortie {
    /// Indices into the original plan's stop list, in visit order.
    pub stops: std::ops::Range<usize>,
    /// Driving distance of the sortie including both base legs.
    pub distance_m: Meters,
    /// Total dwell time of the sortie.
    pub dwell_s: Seconds,
    /// Total energy of the sortie.
    pub energy_j: Joules,
}

/// A plan split into battery-feasible sorties.
#[derive(Debug, Clone, PartialEq)]
pub struct SortiePlan {
    /// The sorties in execution order.
    pub sorties: Vec<Sortie>,
    /// The base station all sorties start and end at.
    pub base: Point,
    /// Total energy across sorties.
    pub total_energy_j: Joules,
}

impl SortiePlan {
    /// Number of sorties.
    pub fn len(&self) -> usize {
        self.sorties.len()
    }

    /// `true` when no sorties are needed (empty plan).
    pub fn is_empty(&self) -> bool {
        self.sorties.is_empty()
    }

    /// The worst single-sortie energy, which must be within budget.
    pub fn max_sortie_energy_j(&self) -> Joules {
        self.sorties
            .iter()
            .map(|s| s.energy_j)
            .fold(Joules(0.0), Joules::max)
    }
}

impl fmt::Display for SortiePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SortiePlan({} sorties, {:.1} total, worst {:.1})",
            self.sorties.len(),
            self.total_energy_j,
            self.max_sortie_energy_j()
        )
    }
}

/// Why a plan could not be split.
#[derive(Debug, Clone, PartialEq)]
pub enum SortieError {
    /// A single stop already exceeds the budget even as its own sortie
    /// (base → stop → base plus its dwell).
    StopExceedsBudget {
        /// Index of the offending stop.
        stop: usize,
        /// Energy of the singleton sortie.
        energy_j: Joules,
        /// The budget.
        budget_j: Joules,
    },
    /// The budget is not a positive finite number.
    InvalidBudget,
}

impl fmt::Display for SortieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortieError::StopExceedsBudget {
                stop,
                energy_j,
                budget_j,
            } => write!(
                f,
                "stop {stop} needs {:.1} J as a singleton sortie, budget is {:.1} J",
                energy_j.0, budget_j.0
            ),
            SortieError::InvalidBudget => write!(f, "budget must be positive and finite"),
        }
    }
}

impl std::error::Error for SortieError {}

/// Splits `plan` into battery-feasible sorties with minimum total energy,
/// keeping the plan's stop order.
///
/// `budget_j` bounds each sortie's energy (movement including base legs
/// plus dwell). The split is optimal for the fixed order (dynamic
/// program over split points, `O(k^2)` for `k` stops).
///
/// # Errors
///
/// [`SortieError::StopExceedsBudget`] if some stop cannot be served even
/// alone; [`SortieError::InvalidBudget`] for a non-positive budget.
pub fn split_into_sorties(
    plan: &ChargingPlan,
    base: Point,
    energy: &EnergyModel,
    budget_j: f64,
) -> Result<SortiePlan, SortieError> {
    if !budget_j.is_finite() || budget_j <= 0.0 {
        return Err(SortieError::InvalidBudget);
    }
    let budget = Joules(budget_j);
    let stops: Vec<&Stop> = plan.stops.iter().filter(|s| !s.bundle.is_empty()).collect();
    let k = stops.len();
    if k == 0 {
        return Ok(SortiePlan {
            sorties: Vec::new(),
            base,
            total_energy_j: Joules(0.0),
        });
    }

    // segment_cost(i, j): energy of one sortie serving stops[i..j].
    let segment = |i: usize, j: usize| -> (Meters, Seconds, Joules) {
        let mut dist = base.distance(stops[i].anchor());
        for w in i..j - 1 {
            dist += stops[w].anchor().distance(stops[w + 1].anchor());
        }
        dist += stops[j - 1].anchor().distance(base);
        let dist = Meters(dist);
        let dwell: Seconds = stops[i..j].iter().map(|s| s.dwell).sum();
        (dist, dwell, energy.total_energy(dist, dwell))
    };

    // Feasibility of singletons first, for a precise error.
    for i in 0..k {
        let (_, _, e) = segment(i, i + 1);
        if e > budget + Joules(1e-9) {
            return Err(SortieError::StopExceedsBudget {
                stop: i,
                energy_j: e,
                budget_j: budget,
            });
        }
    }

    // DP over prefixes. best[j] = (energy, split point).
    let mut best = vec![(Joules(f64::INFINITY), usize::MAX); k + 1];
    best[0] = (Joules(0.0), usize::MAX);
    for j in 1..=k {
        for i in (0..j).rev() {
            let (_, _, e) = segment(i, j);
            if e > budget + Joules(1e-9) {
                break; // longer segments ending at j only cost more
            }
            let cand = best[i].0 + e;
            if cand < best[j].0 {
                best[j] = (cand, i);
            }
        }
    }
    debug_assert!(best[k].0.is_finite(), "singleton feasibility guarantees a split");

    // Reconstruct segments.
    let mut cuts = Vec::new();
    let mut j = k;
    while j > 0 {
        let i = best[j].1;
        cuts.push((i, j));
        j = i;
    }
    cuts.reverse();
    let sorties: Vec<Sortie> = cuts
        .into_iter()
        .map(|(i, j)| {
            let (distance_m, dwell_s, energy_j) = segment(i, j);
            Sortie {
                stops: i..j,
                distance_m,
                dwell_s,
                energy_j,
            }
        })
        .collect();
    let total = sorties.iter().map(|s| s.energy_j).sum();
    Ok(SortiePlan {
        sorties,
        base,
        total_energy_j: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner;
    use crate::PlannerConfig;
    use bc_geom::Aabb;
    use bc_wsn::deploy;

    fn setup() -> (bc_wsn::Network, PlannerConfig, ChargingPlan) {
        let net = deploy::uniform(40, Aabb::square(300.0), 2.0, 77);
        let cfg = PlannerConfig::paper_sim(30.0);
        let plan = planner::bundle_charging(&net, &cfg);
        (net, cfg, plan)
    }

    #[test]
    fn generous_budget_gives_single_sortie() {
        let (net, cfg, plan) = setup();
        let sp = split_into_sorties(&plan, net.base(), &cfg.energy, 1e9).unwrap();
        assert_eq!(sp.len(), 1);
        assert_eq!(sp.sorties[0].stops, 0..plan.num_charging_stops());
    }

    /// The smallest budget for which every stop is feasible alone.
    fn min_feasible_budget(
        plan: &ChargingPlan,
        base: bc_geom::Point,
        energy: &bc_wpt::EnergyModel,
    ) -> f64 {
        plan.stops
            .iter()
            .filter(|s| !s.bundle.is_empty())
            .map(|s| {
                energy
                    .total_energy(Meters(2.0 * base.distance(s.anchor())), s.dwell)
                    .0
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn tight_budget_gives_more_sorties_and_respects_it() {
        let (net, cfg, plan) = setup();
        let single = split_into_sorties(&plan, net.base(), &cfg.energy, 1e9).unwrap();
        let budget = (single.total_energy_j.0 / 3.0)
            .max(min_feasible_budget(&plan, net.base(), &cfg.energy) * 1.05);
        let sp = split_into_sorties(&plan, net.base(), &cfg.energy, budget).unwrap();
        assert!(sp.len() >= 2);
        assert!(sp.max_sortie_energy_j() <= Joules(budget + 1e-6));
        // Splitting adds base legs, so the total can only grow.
        assert!(sp.total_energy_j >= single.total_energy_j - Joules(1e-6));
    }

    #[test]
    fn sorties_cover_every_stop_exactly_once() {
        let (net, cfg, plan) = setup();
        let single = split_into_sorties(&plan, net.base(), &cfg.energy, 1e9).unwrap();
        let budget = (single.total_energy_j.0 / 4.0)
            .max(min_feasible_budget(&plan, net.base(), &cfg.energy) * 1.05);
        let sp = split_into_sorties(&plan, net.base(), &cfg.energy, budget).unwrap();
        let mut covered = Vec::new();
        for s in &sp.sorties {
            covered.extend(s.stops.clone());
        }
        let expected: Vec<usize> = (0..plan.num_charging_stops()).collect();
        assert_eq!(covered, expected);
    }

    #[test]
    fn dp_beats_greedy_splitting() {
        // Greedy fills each sortie until the next stop would overflow;
        // the DP must never be worse.
        let (net, cfg, plan) = setup();
        let single = split_into_sorties(&plan, net.base(), &cfg.energy, 1e9).unwrap();
        let budget = (single.total_energy_j.0 / 2.5)
            .max(min_feasible_budget(&plan, net.base(), &cfg.energy) * 1.05);
        let dp = split_into_sorties(&plan, net.base(), &cfg.energy, budget).unwrap();

        // Greedy reference.
        let stops: Vec<&Stop> = plan.stops.iter().filter(|s| !s.bundle.is_empty()).collect();
        let seg = |i: usize, j: usize| {
            let mut dist = net.base().distance(stops[i].anchor());
            for w in i..j - 1 {
                dist += stops[w].anchor().distance(stops[w + 1].anchor());
            }
            dist += stops[j - 1].anchor().distance(net.base());
            let dwell: Seconds = stops[i..j].iter().map(|s| s.dwell).sum();
            cfg.energy.total_energy(Meters(dist), dwell).0
        };
        let mut greedy_total = 0.0;
        let mut i = 0;
        while i < stops.len() {
            let mut j = i + 1;
            while j < stops.len() && seg(i, j + 1) <= budget {
                j += 1;
            }
            greedy_total += seg(i, j);
            i = j;
        }
        assert!(dp.total_energy_j.0 <= greedy_total + 1e-6);
    }

    #[test]
    fn impossible_stop_reported() {
        let (net, cfg, plan) = setup();
        let err = split_into_sorties(&plan, net.base(), &cfg.energy, 10.0).unwrap_err();
        assert!(matches!(err, SortieError::StopExceedsBudget { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn invalid_budget_rejected() {
        let (net, cfg, plan) = setup();
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                split_into_sorties(&plan, net.base(), &cfg.energy, bad),
                Err(SortieError::InvalidBudget) | Ok(_)
            ));
        }
        assert_eq!(
            split_into_sorties(&plan, net.base(), &cfg.energy, -1.0),
            Err(SortieError::InvalidBudget)
        );
    }

    #[test]
    fn empty_plan_splits_to_nothing() {
        let (net, cfg, _) = setup();
        let empty = ChargingPlan::new(Vec::new(), 0);
        let sp = split_into_sorties(&empty, net.base(), &cfg.energy, 100.0).unwrap();
        assert!(sp.is_empty());
        assert_eq!(sp.total_energy_j, Joules(0.0));
    }
}

//! Runtime invariant contracts at the planner/executor boundaries.
//!
//! Each contract mirrors a guarantee the paper proves or assumes:
//!
//! * **Bundle radius** (Definition 2): every bundle's members fit inside
//!   a disk of the generation radius `r`.
//! * **Dwell time** (Eq. 1): a stop dwells exactly as long as its worst
//!   member needs (or at least that long under the conservative
//!   [`DwellPolicy::RadiusWorstCase`] schedule).
//! * **Coverage** (Algorithm 2's set-cover reduction): every sensor is
//!   served by some stop.
//! * **BC-OPT monotonicity** (Theorem 4): anchor relocation never
//!   increases the tour's operating energy over plain BC.
//! * **Energy accounting**: an [`crate::ExecutionReport`]'s total energy
//!   is the sum of its movement and charging components to `1e-9`.
//!
//! The `check_*` functions return a typed [`ContractViolation`] so they
//! can be used in tests and tools; the `debug_assert_*` wrappers compile
//! to nothing in release builds and are wired into
//! [`crate::planner::try_run`], [`crate::planner::bundle_charging_opt`]
//! and the executor, so every debug-mode test run exercises them.

use std::fmt;

use bc_geom::{sed, Point};
use bc_units::{Joules, Meters, Seconds};
use bc_wsn::Network;

use crate::config::DwellPolicy;
use crate::{ChargingPlan, ExecutionReport, PlannerConfig};

/// Absolute slack for dwell and energy comparisons.
const TOL: f64 = 1e-9;

/// A planner or executor boundary invariant does not hold.
#[derive(Debug, Clone, PartialEq)]
pub enum ContractViolation {
    /// A stop's members do not fit inside a generation-radius disk.
    RadiusExceeded {
        /// Index of the stop in visit order.
        stop: usize,
        /// Smallest enclosing radius of the stop's members.
        radius: Meters,
        /// The configured bundle radius `r`.
        limit: Meters,
    },
    /// A stop's dwell differs from what its worst member requires.
    DwellMismatch {
        /// Index of the stop in visit order.
        stop: usize,
        /// The stop's scheduled dwell.
        dwell: Seconds,
        /// Dwell the worst member requires (Eq. 1).
        required: Seconds,
    },
    /// A sensor is not covered by any stop.
    Uncovered {
        /// Index of the first uncovered sensor.
        sensor: usize,
    },
    /// An optimisation pass increased the energy it promises never to.
    OptimizationRegressed {
        /// Operating energy before the pass.
        before: Joules,
        /// Operating energy after the pass.
        after: Joules,
    },
    /// A report's total energy is not movement + charging.
    EnergyAccountingMismatch {
        /// The reported total.
        total: Joules,
        /// Movement + charging as summed from the components.
        sum: Joules,
    },
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractViolation::RadiusExceeded { stop, radius, limit } => write!(
                f,
                "stop {stop}: members need enclosing radius {radius}, bundle radius is {limit}"
            ),
            ContractViolation::DwellMismatch { stop, dwell, required } => write!(
                f,
                "stop {stop}: dwell {dwell} does not match the worst-member requirement {required}"
            ),
            ContractViolation::Uncovered { sensor } => {
                write!(f, "sensor {sensor} is not covered by any stop")
            }
            ContractViolation::OptimizationRegressed { before, after } => write!(
                f,
                "optimisation increased operating energy from {before} to {after}"
            ),
            ContractViolation::EnergyAccountingMismatch { total, sum } => write!(
                f,
                "report total energy {total} differs from movement + charging = {sum}"
            ),
        }
    }
}

impl std::error::Error for ContractViolation {}

/// Checks that every stop's members fit in a disk of radius `r`.
///
/// The check recomputes the smallest enclosing disk of the *members*
/// rather than trusting `enclosing_radius`: BC-OPT relocates anchors
/// away from the disk center, which legitimately stretches the
/// anchor-to-member distance past `r` while the membership itself still
/// satisfies Definition 2.
///
/// # Errors
///
/// Returns the first [`ContractViolation::RadiusExceeded`] found.
pub fn check_bundle_radii(plan: &ChargingPlan, net: &Network, r: Meters) -> Result<(), ContractViolation> {
    for (si, stop) in plan.stops.iter().enumerate() {
        if stop.bundle.is_empty() {
            continue;
        }
        let pts: Vec<Point> = stop.bundle.sensors.iter().map(|&i| net.sensor(i).pos).collect();
        let disk = sed::smallest_enclosing_disk(&pts);
        if disk.radius > r.0 + bc_geom::EPS {
            return Err(ContractViolation::RadiusExceeded {
                stop: si,
                radius: Meters(disk.radius),
                limit: r,
            });
        }
    }
    Ok(())
}

/// Checks the Eq. 1 dwell law: each stop dwells exactly as long as its
/// worst member requires ([`DwellPolicy::Realized`]), or at least that
/// long ([`DwellPolicy::RadiusWorstCase`], which deliberately
/// over-dwells).
///
/// # Errors
///
/// Returns the first [`ContractViolation::DwellMismatch`] found.
pub fn check_dwell_times(
    plan: &ChargingPlan,
    net: &Network,
    cfg: &PlannerConfig,
) -> Result<(), ContractViolation> {
    for (si, stop) in plan.stops.iter().enumerate() {
        if stop.bundle.is_empty() {
            continue;
        }
        let required = stop.bundle.dwell_time(net, &cfg.charging);
        let tol = Seconds(TOL + TOL * required.0.abs());
        let ok = match cfg.dwell_policy {
            DwellPolicy::Realized => (stop.dwell - required).abs() <= tol,
            DwellPolicy::RadiusWorstCase => stop.dwell + tol >= required,
        };
        if !ok {
            return Err(ContractViolation::DwellMismatch {
                stop: si,
                dwell: stop.dwell,
                required,
            });
        }
    }
    Ok(())
}

/// Checks the set-cover postcondition: every sensor of the network is a
/// member of at least one stop.
///
/// # Errors
///
/// Returns [`ContractViolation::Uncovered`] for the first sensor no stop
/// serves.
pub fn check_cover(plan: &ChargingPlan, net: &Network) -> Result<(), ContractViolation> {
    let mut covered = vec![false; net.len()];
    for stop in &plan.stops {
        for &s in &stop.bundle.sensors {
            if let Some(c) = covered.get_mut(s) {
                *c = true;
            }
        }
    }
    match covered.iter().position(|&c| !c) {
        Some(sensor) => Err(ContractViolation::Uncovered { sensor }),
        None => Ok(()),
    }
}

/// Checks the Theorem 4 monotonicity promise of an optimisation pass:
/// `after <= before` up to tolerance.
///
/// # Errors
///
/// Returns [`ContractViolation::OptimizationRegressed`] when the pass
/// increased the energy.
pub fn check_no_regression(before: Joules, after: Joules) -> Result<(), ContractViolation> {
    if after > before + Joules(TOL + TOL * before.0.abs()) {
        return Err(ContractViolation::OptimizationRegressed { before, after });
    }
    Ok(())
}

/// Checks an execution report's energy ledger: total = movement +
/// charging to `1e-9` (relative).
///
/// # Errors
///
/// Returns [`ContractViolation::EnergyAccountingMismatch`] when the
/// ledger does not add up.
pub fn check_report_energy(report: &ExecutionReport) -> Result<(), ContractViolation> {
    let sum = report.move_energy_j + report.charge_energy_j;
    let tol = Joules(TOL + TOL * sum.0.abs());
    if (report.total_energy_j - sum).abs() > tol {
        return Err(ContractViolation::EnergyAccountingMismatch {
            total: report.total_energy_j,
            sum,
        });
    }
    Ok(())
}

/// Composite planner-boundary contract: radius, dwell and coverage.
///
/// # Errors
///
/// Returns the first violation found, in that order.
pub fn check_plan(
    plan: &ChargingPlan,
    net: &Network,
    cfg: &PlannerConfig,
) -> Result<(), ContractViolation> {
    check_bundle_radii(plan, net, cfg.bundle_radius)?;
    check_dwell_times(plan, net, cfg)?;
    check_cover(plan, net)
}

/// Debug-build assertion of [`check_plan`]; free in release builds.
#[inline]
pub fn debug_assert_plan(plan: &ChargingPlan, net: &Network, cfg: &PlannerConfig) {
    if cfg!(debug_assertions) {
        if let Err(v) = check_plan(plan, net, cfg) {
            panic!("planner contract violated: {v}");
        }
    }
}

/// Debug-build assertion of [`check_no_regression`]; free in release
/// builds.
#[inline]
pub fn debug_assert_no_regression(before: Joules, after: Joules) {
    if cfg!(debug_assertions) {
        if let Err(v) = check_no_regression(before, after) {
            panic!("optimisation contract violated: {v}");
        }
    }
}

/// Debug-build assertion of [`check_report_energy`]; free in release
/// builds.
#[inline]
pub fn debug_assert_report_energy(report: &ExecutionReport) {
    if cfg!(debug_assertions) {
        if let Err(v) = check_report_energy(report) {
            panic!("executor contract violated: {v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{self, Algorithm};
    use crate::{ChargingBundle, Stop};
    use bc_geom::Aabb;
    use bc_wsn::deploy;

    fn net_and_cfg() -> (Network, PlannerConfig) {
        (
            deploy::uniform(40, Aabb::square(300.0), 2.0, 11),
            PlannerConfig::paper_sim(25.0),
        )
    }

    #[test]
    fn all_planners_satisfy_plan_contracts() {
        let (net, cfg) = net_and_cfg();
        for algo in Algorithm::ALL {
            let plan = planner::try_run(algo, &net, &cfg).unwrap();
            check_plan(&plan, &net, &cfg).unwrap_or_else(|v| panic!("{algo}: {v}"));
        }
    }

    #[test]
    fn oversized_bundle_is_caught() {
        let (net, cfg) = net_and_cfg();
        // One bundle holding everything in a 300 m field cannot fit r=25.
        let all: Vec<usize> = (0..net.len()).collect();
        let stop = Stop::for_bundle(ChargingBundle::from_members(all, &net), &net, &cfg.charging);
        let plan = ChargingPlan::new(vec![stop], net.len());
        assert!(matches!(
            check_bundle_radii(&plan, &net, cfg.bundle_radius),
            Err(ContractViolation::RadiusExceeded { stop: 0, .. })
        ));
    }

    #[test]
    fn shortened_dwell_is_caught() {
        let (net, cfg) = net_and_cfg();
        let mut plan = planner::bundle_charging(&net, &cfg);
        let i = plan
            .stops
            .iter()
            .position(|s| s.dwell > Seconds(0.0))
            .expect("some charging stop");
        plan.stops[i].dwell = plan.stops[i].dwell * 0.5;
        assert!(matches!(
            check_dwell_times(&plan, &net, &cfg),
            Err(ContractViolation::DwellMismatch { .. })
        ));
    }

    #[test]
    fn worst_case_policy_accepts_over_dwell() {
        let (net, mut cfg) = net_and_cfg();
        cfg.dwell_policy = DwellPolicy::RadiusWorstCase;
        let plan = planner::bundle_charging(&net, &cfg);
        check_dwell_times(&plan, &net, &cfg).expect("over-dwell is allowed");
    }

    #[test]
    fn dropped_sensor_is_caught() {
        let (net, cfg) = net_and_cfg();
        let mut plan = planner::bundle_charging(&net, &cfg);
        plan.stops.pop();
        assert!(matches!(
            check_cover(&plan, &net),
            Err(ContractViolation::Uncovered { .. })
        ));
    }

    #[test]
    fn regression_check_orders_energies() {
        check_no_regression(Joules(10.0), Joules(9.0)).expect("improvement passes");
        check_no_regression(Joules(10.0), Joules(10.0)).expect("equality passes");
        let v = check_no_regression(Joules(10.0), Joules(10.1)).unwrap_err();
        assert!(v.to_string().contains("increased"));
    }

    #[test]
    fn violations_display() {
        let v = ContractViolation::Uncovered { sensor: 3 };
        assert!(v.to_string().contains("sensor 3"));
        let v = ContractViolation::EnergyAccountingMismatch {
            total: Joules(2.0),
            sum: Joules(1.0),
        };
        assert!(v.to_string().contains("differs"));
    }
}

//! Bundle charging: the primary contribution of the ICDCS 2019 paper.
//!
//! A mobile charger must deliver at least `delta` joules to every sensor
//! of a dense network while minimizing its *operating energy* — movement
//! cost along the tour plus charging-mode cost while parked. Because
//! wireless charging is one-to-many, nearby sensors can be grouped into a
//! **charging bundle** served from a single *anchor point*.
//!
//! The crate solves the paper's two sub-problems:
//!
//! 1. **Optimal Bundle Generation (OBG)** — [`generation`] produces a
//!    minimum-cardinality family of radius-`r` bundles covering all
//!    sensors, with the paper's greedy Algorithm 2 (`ln n + 1`
//!    approximation), a grid baseline, and an exact branch-and-bound
//!    optimum.
//! 2. **Bundle Trajectory Optimization (BTO)** — [`planner`] turns a
//!    bundle family into a charging tour. Four planners are provided:
//!    [`planner::single_charging`] (SC), [`planner::css`]
//!    (Combine–Skip–Substitute), [`planner::bundle_charging`] (BC) and
//!    [`planner::bundle_charging_opt`] (BC-OPT, Algorithm 3 with the
//!    Theorem 4/5 tangency search).
//!
//! # Quickstart
//!
//! ```
//! use bc_core::{PlannerConfig, planner};
//! use bc_wsn::deploy;
//! use bc_geom::Aabb;
//!
//! let net = deploy::uniform(40, Aabb::square(1000.0), 2.0, 1);
//! let cfg = PlannerConfig::paper_sim(10.0);
//! let plan = planner::bundle_charging_opt(&net, &cfg);
//! assert!(plan.validate(&net, &cfg.charging).is_ok());
//! let m = plan.metrics(&cfg.energy);
//! assert!(m.total_energy_j > bc_units::Joules(0.0));
//! ```

#![warn(missing_docs)]

pub mod bundle;
pub mod candidates;
pub mod config;
pub mod context;
pub mod contracts;
pub mod execute;
pub mod faults;
pub mod generation;
pub mod multi;
pub mod par;
pub mod plan;
pub mod planner;
pub mod replan;
pub mod sortie;
pub mod terrain;
pub mod tighten;

pub use bundle::ChargingBundle;
pub use candidates::{Candidate, CandidateFamily};
pub use config::{ConfigError, DwellPolicy, PlannerConfig};
pub use context::{
    BudgetedPlan, BuildCounters, ContextCache, PlanContext, PlanStage, StageBudget, StageKind,
    StageState, StageTimings, StagedPlan,
};
pub use contracts::ContractViolation;
pub use execute::{ExecError, ExecutedStop, ExecutionReport, Executor, RecoveryPolicy};
pub use faults::{FaultModel, FaultModelError, FaultSchedule};
pub use generation::{generate_bundles, BundleStrategy};
pub use multi::{plan_fleet, try_plan_fleet, MultiChargerPlan};
pub use plan::{ChargingPlan, Metrics, PlanError, Stop};
pub use replan::{add_sensor, remove_sensor};
pub use sortie::{split_into_sorties, Sortie, SortieError, SortiePlan};
pub use terrain::{plan_with_terrain, Terrain, TerrainRoute};
pub use tighten::{tighten_dwells, validate_cross_credit, TightenReport};

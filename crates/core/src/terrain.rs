//! Obstacle-aware charger routing.
//!
//! The paper's network model assumes "no obstacles exist and the mobile
//! charger can move in all possible directions", yet its formulation
//! already speaks the more general language: Table I defines
//! `d(l_i, l_j)` as *the shortest path between two charging locations*.
//! This module supplies that generality. A [`Terrain`] holds polygon
//! obstacles (buildings, water, cliffs); RF still propagates over them
//! (charging distances stay Euclidean — radio crosses what wheels
//! cannot), but every tour leg is routed with the visibility-graph
//! shortest path and priced by its real length.
//!
//! [`plan_with_terrain`] runs any planner against the terrain metric and
//! returns the plan together with its [`TerrainRoute`] — the per-leg
//! way-point polylines and the true driving distance.

use bc_geom::visibility::VisibilityRouter;
use bc_geom::{Point, Polygon};
use bc_tsp::{solve_matrix, DistanceMatrix};
use bc_units::{Meters, Seconds};
use bc_wsn::Network;

use crate::config::DwellPolicy;
use crate::planner::Algorithm;
use crate::{generate_bundles, ChargingPlan, Metrics, PlannerConfig, Stop};

/// A field with impassable polygon obstacles.
#[derive(Debug, Clone)]
pub struct Terrain {
    router: VisibilityRouter,
}

impl Terrain {
    /// Creates a terrain from obstacle footprints.
    pub fn new(obstacles: Vec<Polygon>) -> Self {
        Terrain {
            router: VisibilityRouter::new(obstacles),
        }
    }

    /// An obstacle-free terrain (the paper's assumption).
    pub fn open() -> Self {
        Terrain::new(Vec::new())
    }

    /// The obstacle footprints.
    pub fn obstacles(&self) -> &[Polygon] {
        self.router.obstacles()
    }

    /// Shortest driveable distance between two points.
    pub fn distance(&self, a: Point, b: Point) -> f64 {
        self.router.path_length(a, b)
    }

    /// Shortest driveable path between two points (way-points).
    pub fn path(&self, a: Point, b: Point) -> Vec<Point> {
        self.router.shortest_path(a, b).1
    }

    /// Whether a point is inside an obstacle (unusable as an anchor).
    pub fn inside_obstacle(&self, p: Point) -> bool {
        self.router.inside_obstacle(p)
    }
}

/// The driveable realisation of a plan's tour on a terrain.
#[derive(Debug, Clone, PartialEq)]
pub struct TerrainRoute {
    /// Way-point polyline per tour leg (leg `i` runs from stop `i` to
    /// stop `i + 1`, cyclically).
    pub legs: Vec<Vec<Point>>,
    /// Total driving distance over all legs.
    pub length_m: Meters,
}

impl TerrainRoute {
    /// Traces a plan's closed tour over the terrain.
    pub fn trace(plan: &ChargingPlan, terrain: &Terrain) -> Self {
        let n = plan.stops.len();
        let mut legs = Vec::with_capacity(n);
        let mut length = 0.0;
        if n >= 2 {
            for i in 0..n {
                let a = plan.stops[i].anchor();
                let b = plan.stops[(i + 1) % n].anchor();
                let (d, path) = (terrain.distance(a, b), terrain.path(a, b));
                length += d;
                legs.push(path);
            }
        }
        TerrainRoute {
            legs,
            length_m: Meters(length),
        }
    }

    /// Plan metrics with the movement term re-priced by the routed
    /// distance (dwell terms unchanged).
    pub fn metrics(&self, plan: &ChargingPlan, energy: &bc_wpt::EnergyModel) -> Metrics {
        let dwell = plan.total_dwell();
        let move_energy = energy.movement_energy(self.length_m);
        let charge_energy = energy.charging_energy(dwell);
        Metrics {
            num_stops: plan.num_charging_stops(),
            tour_length_m: self.length_m,
            charge_time_s: dwell,
            move_energy_j: move_energy,
            charge_energy_j: charge_energy,
            total_energy_j: move_energy + charge_energy,
            avg_charge_time_per_sensor_s: if plan.num_sensors == 0 {
                Seconds(0.0)
            } else {
                dwell / plan.num_sensors as f64 // cast-ok: sensor count to mean divisor
            },
            stage_timings: None,
        }
    }
}

/// Plans a charging tour whose stop order minimises the *routed* tour
/// length, and returns the plan with its terrain route.
///
/// Bundling is unchanged (RF ignores obstacles); anchors that land
/// inside an obstacle are nudged to the nearest free position among the
/// bundle's sensors. BC-OPT's continuous relocation is not applied on
/// terrains (the tangency argument assumes straight legs), so
/// `Algorithm::BcOpt` falls back to BC with a routed tour.
pub fn plan_with_terrain(
    net: &Network,
    cfg: &PlannerConfig,
    terrain: &Terrain,
    algo: Algorithm,
) -> (ChargingPlan, TerrainRoute) {
    // Build stops exactly like the open-field planners do.
    let mut stops: Vec<Stop> = match algo {
        Algorithm::Sc => (0..net.len())
            .map(|i| {
                Stop::for_bundle(
                    crate::ChargingBundle::from_members(vec![i], net),
                    net,
                    &cfg.charging,
                )
            })
            .collect(),
        _ => generate_bundles(net, cfg.bundle_radius, cfg.bundle_strategy)
            .into_iter()
            .map(|b| match cfg.dwell_policy {
                DwellPolicy::Realized => Stop::for_bundle(b, net, &cfg.charging),
                DwellPolicy::RadiusWorstCase => {
                    let dwell = b.worst_case_dwell_time(cfg.bundle_radius, net, &cfg.charging);
                    Stop { bundle: b, dwell }
                }
            })
            .collect(),
    };

    // Anchors inside obstacles are illegal parking spots: snap to the
    // nearest member sensor outside every obstacle (sensors inside
    // obstacles would be undeployable, so one always exists in practice;
    // fall back to the anchor itself otherwise).
    for stop in &mut stops {
        if terrain.inside_obstacle(stop.anchor()) && !stop.bundle.is_empty() {
            let members = stop.bundle.sensors.clone();
            let best = members
                .iter()
                .map(|&s| net.sensor(s).pos)
                .filter(|&p| !terrain.inside_obstacle(p))
                .min_by(|a, b| {
                    a.distance_squared(stop.anchor())
                        .total_cmp(&b.distance_squared(stop.anchor()))
                });
            if let Some(p) = best {
                let bundle = crate::ChargingBundle::with_anchor(members, p, net);
                *stop = Stop::for_bundle(bundle, net, &cfg.charging);
            }
        }
    }

    // Order the stops by the routed metric, and also by the Euclidean
    // metric re-priced on the terrain; keep whichever drives less (the
    // local searches can land in different optima, and the Euclidean
    // order is often already good when few legs detour).
    let anchors: Vec<Point> = stops.iter().map(Stop::anchor).collect();
    let routed = DistanceMatrix::from_fn(anchors.len(), |i, j| {
        terrain.distance(anchors[i], anchors[j])
    });
    let euclid = DistanceMatrix::from_points(&anchors); // context-ok: stop anchors, not the cached sensor matrix
    let tour_r = solve_matrix(&routed, &cfg.tsp);
    let tour_e = solve_matrix(&euclid, &cfg.tsp);
    let routed_len = |order: &[usize]| -> f64 {
        bc_tsp::tour::cycle_length(order, |a, b| routed.dist(a, b))
    };
    let order = if routed_len(&tour_r.order) <= routed_len(&tour_e.order) {
        tour_r.order
    } else {
        tour_e.order
    };
    let mut ordered = Vec::with_capacity(stops.len());
    let mut slots: Vec<Option<Stop>> = stops.into_iter().map(Some).collect();
    for &i in &order {
        debug_assert!(
            slots.get(i).is_some_and(Option::is_some),
            "tour visits each stop once"
        );
        if let Some(stop) = slots.get_mut(i).and_then(Option::take) {
            ordered.push(stop);
        }
    }
    let plan = ChargingPlan::new(ordered, net.len());
    let route = TerrainRoute::trace(&plan, terrain);
    (plan, route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_geom::Aabb;
    use bc_wsn::deploy;

    fn walled_terrain() -> Terrain {
        Terrain::new(vec![Polygon::rectangle(
            Point::new(120.0, 20.0),
            Point::new(180.0, 280.0),
        )])
    }

    /// A uniform deployment with sensors inside obstacles removed (real
    /// deployments cannot place motes inside a building).
    fn deploy_around(n: usize, side: f64, seed: u64, terrain: &Terrain) -> bc_wsn::Network {
        let net = deploy::uniform(n, Aabb::square(side), 2.0, seed);
        let coords: Vec<(f64, f64)> = net
            .sensors()
            .iter()
            .filter(|s| !terrain.inside_obstacle(s.pos))
            .map(|s| (s.pos.x, s.pos.y))
            .collect();
        deploy::from_coords(&coords, Aabb::square(side), 2.0)
    }

    #[test]
    fn open_terrain_matches_euclidean_plan() {
        let net = deploy::uniform(30, Aabb::square(300.0), 2.0, 6);
        let cfg = PlannerConfig::paper_sim(30.0);
        let (plan, route) = plan_with_terrain(&net, &cfg, &Terrain::open(), Algorithm::Bc);
        assert!(plan.validate(&net, &cfg.charging).is_ok());
        assert!((route.length_m - plan.tour_length()).abs() < Meters(1e-6));
    }

    #[test]
    fn obstacles_lengthen_the_route() {
        let terrain = walled_terrain();
        let net = deploy_around(40, 300.0, 6, &terrain);
        let cfg = PlannerConfig::paper_sim(30.0);
        let (plan, route) = plan_with_terrain(&net, &cfg, &terrain, Algorithm::Bc);
        assert!(plan.validate(&net, &cfg.charging).is_ok());
        // The routed length can never undercut the straight-line tour.
        assert!(route.length_m >= plan.tour_length() - Meters(1e-6));
        // Every leg is driveable.
        for leg in &route.legs {
            for w in leg.windows(2) {
                assert!(
                    !terrain
                        .obstacles()
                        .iter()
                        .any(|o| o.blocks(bc_geom::Segment::new(w[0], w[1]))),
                    "leg segment crosses an obstacle"
                );
            }
        }
    }

    #[test]
    fn terrain_aware_order_beats_euclidean_order_on_routed_length() {
        // A big wall: ordering by Euclidean distance zig-zags across it;
        // ordering by routed distance should not be worse.
        let terrain = walled_terrain();
        let net = deploy_around(40, 300.0, 9, &terrain);
        let cfg = PlannerConfig::paper_sim(25.0);
        let (_, routed) = plan_with_terrain(&net, &cfg, &terrain, Algorithm::Bc);
        // Euclidean-ordered plan, then re-trace over the terrain.
        let naive = crate::planner::bundle_charging(&net, &cfg);
        let naive_route = TerrainRoute::trace(&naive, &terrain);
        assert!(
            routed.length_m <= naive_route.length_m + Meters(1e-6),
            "routed {} vs naive {}",
            routed.length_m,
            naive_route.length_m
        );
    }

    #[test]
    fn metrics_reprice_movement_only() {
        let terrain = Terrain::new(vec![Polygon::rectangle(
            Point::new(80.0, 0.0),
            Point::new(120.0, 150.0),
        )]);
        let net = deploy_around(20, 200.0, 3, &terrain);
        let cfg = PlannerConfig::paper_sim(25.0);
        let (plan, route) = plan_with_terrain(&net, &cfg, &terrain, Algorithm::Bc);
        let m = route.metrics(&plan, &cfg.energy);
        assert!((m.charge_time_s - plan.total_dwell()).abs() < Seconds(1e-9));
        assert!((m.tour_length_m - route.length_m).abs() < Meters(1e-9));
        assert!(
            m.total_energy_j >= plan.metrics(&cfg.energy).total_energy_j - bc_units::Joules(1e-6)
        );
    }

    #[test]
    fn anchor_inside_obstacle_is_snapped_out() {
        // Two sensors straddling a thin wall: their SED center falls
        // inside it.
        let net = deploy::from_coords(&[(95.0, 50.0), (125.0, 50.0)], Aabb::square(200.0), 2.0);
        let cfg = PlannerConfig::paper_sim(40.0);
        let terrain = Terrain::new(vec![Polygon::rectangle(
            Point::new(100.0, 0.0),
            Point::new(120.0, 100.0),
        )]);
        let (plan, _) = plan_with_terrain(&net, &cfg, &terrain, Algorithm::Bc);
        for stop in &plan.stops {
            assert!(!terrain.inside_obstacle(stop.anchor()));
        }
        assert!(plan.validate(&net, &cfg.charging).is_ok());
    }

    #[test]
    fn sc_variant_runs_on_terrain() {
        let net = deploy_around(15, 200.0, 4, &walled_terrain());
        let cfg = PlannerConfig::paper_sim(20.0);
        let (plan, route) = plan_with_terrain(&net, &cfg, &walled_terrain(), Algorithm::Sc);
        assert_eq!(plan.num_charging_stops(), net.len());
        assert!(route.length_m > Meters(0.0));
    }
}

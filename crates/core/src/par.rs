//! Deterministic scoped-thread fan-out for the parallel pipeline stages.
//!
//! Mirrors the worker-pool shape of `bc-sim`'s runner (scoped threads, an
//! atomic work counter, per-slot results) so the crate gains parallelism
//! without any new runtime dependency. Determinism is structural: task
//! `i`'s result always lands in slot `i`, and callers reduce the slots in
//! index order, so the output is byte-identical for any worker count.
//!
//! This module is the workspace's sanctioned thread-spawn point (the
//! `det-thread-spawn` lint bans `std::thread` elsewhere): bc-campaign's
//! seed-sweep driver fans out through [`par_map`] rather than rolling its
//! own pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread;

/// Maps `f` over `0..n` on up to `workers` scoped threads, returning the
/// results in index order.
///
/// With `workers <= 1` (or fewer than two tasks) the map runs inline on
/// the caller's thread — the parallel and serial paths produce identical
/// output by construction, because `f` sees only its own index.
///
/// A panic inside `f` propagates to the caller once all workers finish
/// (the scoped-thread join re-raises it).
pub fn par_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    {
        let next = AtomicUsize::new(0);
        let slot_refs: Vec<Mutex<&mut Option<T>>> = slots.iter_mut().map(Mutex::new).collect();
        thread::scope(|scope| {
            for _ in 0..workers.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i);
                    **slot_refs[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("every work item was claimed and completed")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| i * i + 1;
        let serial = par_map(100, 1, f);
        for workers in [2, 3, 8, 64] {
            assert_eq!(par_map(100, workers, f), serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(par_map(0, 4, |i| i).is_empty());
        assert_eq!(par_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_workers_than_items() {
        assert_eq!(par_map(3, 16, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            par_map(8, 4, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(r.is_err());
    }
}

//! Cross-stop dwell tightening — exploiting the full Eq. 3 constraint.
//!
//! The BTO formulation's charging constraint is
//! `sum_i p_r(i, j) * t_i >= delta_j`: a sensor may be credited energy
//! from *every* stop of the tour, not only the stop it is assigned to.
//! The paper's planners never exploit this (each bundle's dwell covers
//! its own members in isolation, which is safe but conservative —
//! one-to-many charging leaks energy to every sensor in range of every
//! stop). This module implements the natural extension: given a finished
//! plan, shrink dwell times to the componentwise-minimal fixed point that
//! still satisfies the full cross-credit constraint.
//!
//! The solver is Gauss–Seidel on the constraint system: each pass
//! re-derives every stop's dwell as exactly what its own members still
//! need given all other stops' current dwells, sweeping until a full
//! pass changes nothing. Dwells only ever decrease from the feasible
//! starting point and the result is re-validated under the cross-credit
//! semantics, so the pass is always safe to apply.

use bc_units::{Joules, Meters, Seconds, Watts};
use bc_wpt::ChargingModel;
use bc_wsn::Network;

use crate::{ChargingPlan, PlanError};

/// Outcome of a tightening pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TightenReport {
    /// Gauss–Seidel sweeps executed.
    pub sweeps: usize,
    /// Total dwell before tightening.
    pub dwell_before_s: Seconds,
    /// Total dwell after tightening.
    pub dwell_after_s: Seconds,
}

impl TightenReport {
    /// Fraction of dwell time removed, in `[0, 1)`.
    pub fn saving(&self) -> f64 {
        if self.dwell_before_s.0 <= 0.0 {
            0.0
        } else {
            1.0 - self.dwell_after_s / self.dwell_before_s
        }
    }
}

/// Energy delivered to every sensor by the whole tour under cross-stop
/// crediting, indexed like the network.
pub fn delivered_energy(plan: &ChargingPlan, net: &Network, model: &ChargingModel) -> Vec<Joules> {
    let mut delivered = vec![Joules(0.0); net.len()];
    for stop in &plan.stops {
        if stop.dwell.0 <= 0.0 {
            continue;
        }
        for (j, s) in net.sensors().iter().enumerate() {
            let d = Meters(s.pos.distance(stop.anchor()));
            delivered[j] += model.delivered_energy(d, stop.dwell);
        }
    }
    delivered
}

/// Validates a plan under the cross-credit semantics of Eq. 3: every
/// sensor's *total* received energy meets its demand.
///
/// # Errors
///
/// Returns [`PlanError::Undercharged`] for the first failing sensor
/// (with `stop` set to the sensor's assigned stop, or 0 if unassigned)
/// or [`PlanError::Unassigned`] if a sensor belongs to no stop.
pub fn validate_cross_credit(
    plan: &ChargingPlan,
    net: &Network,
    model: &ChargingModel,
) -> Result<(), PlanError> {
    let mut assigned_stop = vec![usize::MAX; net.len()];
    for (si, stop) in plan.stops.iter().enumerate() {
        for &s in &stop.bundle.sensors {
            if assigned_stop[s] != usize::MAX {
                return Err(PlanError::DuplicateAssignment { sensor: s });
            }
            assigned_stop[s] = si;
        }
    }
    if let Some(sensor) = assigned_stop.iter().position(|&s| s == usize::MAX) {
        return Err(PlanError::Unassigned { sensor });
    }
    let delivered = delivered_energy(plan, net, model);
    for (j, &e) in delivered.iter().enumerate() {
        let demanded = net.sensor(j).demand;
        if e + Joules(1e-9) < demanded {
            return Err(PlanError::Undercharged {
                stop: assigned_stop[j],
                sensor: j,
                delivered: e,
                demanded,
            });
        }
    }
    Ok(())
}

/// Shrinks the plan's dwell times in place to the minimal fixed point of
/// the cross-credit constraint system, and returns what happened.
///
/// Starts from the plan's (feasible) dwells and sweeps at most
/// `max_sweeps` times; each sweep recomputes every stop's dwell as the
/// exact requirement of its own members given all other dwells. If the
/// tightened plan unexpectedly fails cross-credit validation (it cannot,
/// barring floating-point pathologies), the original dwells are
/// restored.
pub fn tighten_dwells(
    plan: &mut ChargingPlan,
    net: &Network,
    model: &ChargingModel,
    max_sweeps: usize,
) -> TightenReport {
    let before: Vec<Seconds> = plan.stops.iter().map(|s| s.dwell).collect();
    let dwell_before_s: Seconds = before.iter().sum();
    let n_stops = plan.stops.len();

    // Precompute received power per (stop, sensor) pair once.
    let power: Vec<Vec<Watts>> = plan
        .stops
        .iter()
        .map(|stop| {
            net.sensors()
                .iter()
                .map(|s| model.received_power(Meters(s.pos.distance(stop.anchor()))))
                .collect()
        })
        .collect();

    let mut sweeps = 0usize;
    for _ in 0..max_sweeps {
        sweeps += 1;
        let mut changed = false;
        for i in 0..n_stops {
            let members = &plan.stops[i].bundle.sensors;
            if members.is_empty() {
                continue;
            }
            let mut needed = Seconds(0.0);
            for &j in members {
                // Energy from every other stop at current dwells.
                let mut credit = Joules(0.0);
                for (k, stop) in plan.stops.iter().enumerate() {
                    if k != i {
                        credit += power[k][j] * stop.dwell;
                    }
                }
                let deficit = (net.sensor(j).demand - credit).max(Joules(0.0));
                let p = power[i][j];
                if p.0 > 0.0 {
                    needed = needed.max(deficit / p);
                } else if deficit.0 > 0.0 {
                    // Unreachable member: keep the original dwell.
                    needed = needed.max(before[i]);
                }
            }
            // Dwells only shrink: never exceed the feasible start value.
            let new_dwell = needed.min(before[i]);
            if (plan.stops[i].dwell - new_dwell).abs() > Seconds(1e-9) {
                plan.stops[i].dwell = new_dwell;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    if validate_cross_credit(plan, net, model).is_err() {
        // Restore: the pass must never break feasibility.
        for (stop, &d) in plan.stops.iter_mut().zip(&before) {
            stop.dwell = d;
        }
        return TightenReport {
            sweeps,
            dwell_before_s,
            dwell_after_s: dwell_before_s,
        };
    }
    TightenReport {
        sweeps,
        dwell_before_s,
        dwell_after_s: plan.stops.iter().map(|s| s.dwell).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner;
    use crate::PlannerConfig;
    use bc_geom::Aabb;
    use bc_wsn::deploy;

    #[test]
    fn tightening_never_breaks_cross_credit_feasibility() {
        for seed in [1u64, 2, 3] {
            let net = deploy::uniform(60, Aabb::square(300.0), 2.0, seed);
            let cfg = PlannerConfig::paper_sim(25.0);
            let mut plan = planner::bundle_charging(&net, &cfg);
            let rep = tighten_dwells(&mut plan, &net, &cfg.charging, 50);
            assert!(validate_cross_credit(&plan, &net, &cfg.charging).is_ok());
            assert!(rep.dwell_after_s <= rep.dwell_before_s + Seconds(1e-9));
        }
    }

    #[test]
    fn tightening_saves_dwell_in_dense_networks() {
        let net = deploy::uniform(150, Aabb::square(200.0), 2.0, 4);
        let cfg = PlannerConfig::paper_sim(20.0);
        let mut plan = planner::bundle_charging(&net, &cfg);
        let rep = tighten_dwells(&mut plan, &net, &cfg.charging, 50);
        assert!(
            rep.saving() > 0.05,
            "expected >5% dwell saving, got {:.1}%",
            100.0 * rep.saving()
        );
    }

    #[test]
    fn original_plan_already_cross_feasible() {
        let net = deploy::uniform(30, Aabb::square(300.0), 2.0, 8);
        let cfg = PlannerConfig::paper_sim(25.0);
        let plan = planner::bundle_charging_opt(&net, &cfg);
        assert!(validate_cross_credit(&plan, &net, &cfg.charging).is_ok());
    }

    #[test]
    fn strict_validation_fails_after_tightening_but_cross_holds() {
        // Tightened dwells typically violate the per-stop worst-case
        // check while satisfying the global constraint — that is the
        // point of the extension.
        let net = deploy::uniform(120, Aabb::square(200.0), 2.0, 5);
        let cfg = PlannerConfig::paper_sim(20.0);
        let mut plan = planner::bundle_charging(&net, &cfg);
        let rep = tighten_dwells(&mut plan, &net, &cfg.charging, 50);
        assert!(rep.saving() > 0.0);
        assert!(validate_cross_credit(&plan, &net, &cfg.charging).is_ok());
        assert!(plan.validate(&net, &cfg.charging).is_err());
    }

    #[test]
    fn delivered_energy_counts_every_stop() {
        let net = deploy::from_coords(&[(0.0, 0.0), (10.0, 0.0)], Aabb::square(20.0), 2.0);
        let cfg = PlannerConfig::paper_sim(1.0);
        let plan = planner::single_charging(&net, &cfg);
        let delivered = delivered_energy(&plan, &net, &cfg.charging);
        // Each sensor gets its 2 J from its own stop plus spillover from
        // the other stop 10 m away.
        for &e in &delivered {
            assert!(e > Joules(2.0));
        }
    }

    #[test]
    fn empty_plan_report() {
        let net = deploy::uniform(0, Aabb::square(10.0), 2.0, 0);
        let cfg = PlannerConfig::paper_sim(5.0);
        let mut plan = ChargingPlan::new(Vec::new(), 0);
        let rep = tighten_dwells(&mut plan, &net, &cfg.charging, 10);
        assert_eq!(rep.saving(), 0.0);
    }
}

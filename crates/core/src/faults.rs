//! Deterministic fault injection for charging-tour execution.
//!
//! The paper evaluates plans that execute perfectly; a dense WRSN does
//! not. Mid-tour sensor deaths, degraded charging efficiency, charger
//! stalls and transient failed charge attempts all happen in deployment
//! (cf. the depletion-minimization literature), and a planner stack that
//! is only ever exercised on the happy path hides its recovery cost.
//!
//! [`FaultModel`] describes *how often* each fault class occurs;
//! [`FaultModel::schedule`] expands it into a concrete, per-round
//! [`FaultSchedule`] — every death, degradation, stall and failed
//! attempt pinned to a stop index — using a counter-based generator, so
//! the same `(seed, round, n_sensors, n_stops)` always yields the same
//! schedule regardless of how the executor consumes it. The executor in
//! [`crate::execute`] then steps a plan against the schedule.

use std::fmt;

use bc_units::Seconds;

/// Splitmix64-based counter RNG: every draw is a pure function of
/// `(seed, stream, counter)`, which keeps fault schedules byte-identical
/// across runs and platforms.
#[derive(Debug, Clone)]
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64, stream: u64) -> Self {
        // Mix the stream id in with one splitmix step so streams with
        // nearby seeds decorrelate.
        let mut r = FaultRng {
            state: seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        r.next_u64();
        r
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) // cast-ok: 53 mantissa bits to unit float
    }

    /// Uniform draw from `0..n` (`n > 0`).
    fn index(&mut self, n: usize) -> usize {
        usize::try_from(self.next_u64() % n as u64) // cast-ok: modulus below n fits usize
            .unwrap_or_else(|_| unreachable!("modulus below n fits usize"))
    }
}

/// A per-seed stochastic model of execution faults.
///
/// All probabilities are per *round* (deaths, per sensor) or per *stop* /
/// *leg* (everything else). Use [`FaultModel::none`] for fault-free
/// execution and [`FaultModel::with_rate`] to scale every fault class
/// from a single knob, which is what the `repro faults` sweep does.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Seed of the fault stream. Rounds derive sub-streams from it, so
    /// one model drives a whole lifetime simulation deterministically.
    pub seed: u64,
    /// Probability that a given sensor dies at some point during a round.
    pub death_prob: f64,
    /// Probability that charging efficiency is degraded at a given stop.
    pub degrade_prob: f64,
    /// Worst-case efficiency factor of a degraded stop, in `(0, 1]`;
    /// realized factors are uniform in `[degrade_floor, 1)`.
    pub degrade_floor: f64,
    /// Probability that the charger stalls on the leg into a given stop.
    pub stall_prob: f64,
    /// Maximum extra slowdown of a stalled leg: a stalled leg's drive
    /// time is multiplied by a factor uniform in `[1, 1 + stall_slowdown_max]`.
    pub stall_slowdown_max: f64,
    /// Probability that a charge attempt at a given stop fails
    /// transiently (per attempt, independent).
    pub charge_fail_prob: f64,
    /// Bounded retry: attempts beyond `1 + max_retries` make the stop
    /// unrecoverable in place and hand it to the recovery policy.
    pub max_retries: u32,
    /// Base backoff between retries (s); attempt `k` backs off
    /// `backoff_s * 2^k`.
    pub backoff_s: Seconds,
}

impl FaultModel {
    /// A model that injects nothing; execution reduces to the plan.
    pub fn none() -> Self {
        FaultModel {
            seed: 0,
            death_prob: 0.0,
            degrade_prob: 0.0,
            degrade_floor: 0.5,
            stall_prob: 0.0,
            stall_slowdown_max: 1.0,
            charge_fail_prob: 0.0,
            max_retries: 2,
            backoff_s: Seconds(30.0),
        }
    }

    /// Scales every fault class from one `rate` knob in `[0, 1]`:
    /// deaths at `rate / 10` (deaths are rarer than glitches),
    /// degradation, stalls and transient charge failures at `rate`.
    pub fn with_rate(seed: u64, rate: f64) -> Self {
        FaultModel {
            seed,
            death_prob: rate / 10.0,
            degrade_prob: rate,
            degrade_floor: 0.5,
            stall_prob: rate,
            stall_slowdown_max: 1.0,
            charge_fail_prob: rate,
            max_retries: 2,
            backoff_s: Seconds(30.0),
        }
    }

    /// Checks every probability is a finite value in `[0, 1]` and every
    /// magnitude is finite and sane.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultModelError`] naming the offending field.
    pub fn validate(&self) -> Result<(), FaultModelError> {
        let probs = [
            ("death_prob", self.death_prob),
            ("degrade_prob", self.degrade_prob),
            ("stall_prob", self.stall_prob),
            ("charge_fail_prob", self.charge_fail_prob),
        ];
        for (field, p) in probs {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(FaultModelError::BadProbability { field, value: p });
            }
        }
        if !self.degrade_floor.is_finite() || self.degrade_floor <= 0.0 || self.degrade_floor > 1.0
        {
            return Err(FaultModelError::BadMagnitude {
                field: "degrade_floor",
                value: self.degrade_floor,
            });
        }
        if !self.stall_slowdown_max.is_finite() || self.stall_slowdown_max < 0.0 {
            return Err(FaultModelError::BadMagnitude {
                field: "stall_slowdown_max",
                value: self.stall_slowdown_max,
            });
        }
        if !self.backoff_s.is_finite() || self.backoff_s < Seconds(0.0) {
            return Err(FaultModelError::BadMagnitude {
                field: "backoff_s",
                value: self.backoff_s.0,
            });
        }
        Ok(())
    }

    /// Expands the model into the concrete schedule of round `round` for
    /// a plan with `n_stops` stops over a network of `n_sensors` sensors.
    ///
    /// Deterministic: the same `(model, round, n_sensors, n_stops)`
    /// always produces the same schedule.
    pub fn schedule(&self, round: u64, n_sensors: usize, n_stops: usize) -> FaultSchedule {
        // Independent streams per fault class, so adding stops never
        // perturbs the death draws and vice versa.
        let mut deaths_rng = FaultRng::new(self.seed, round.wrapping_mul(4));
        let mut degrade_rng = FaultRng::new(self.seed, round.wrapping_mul(4) + 1);
        let mut stall_rng = FaultRng::new(self.seed, round.wrapping_mul(4) + 2);
        let mut fail_rng = FaultRng::new(self.seed, round.wrapping_mul(4) + 3);

        let deaths = (0..n_sensors)
            .map(|_| {
                let dies = deaths_rng.unit() < self.death_prob;
                // Draw the stop unconditionally to keep streams aligned.
                let at = if n_stops > 0 {
                    deaths_rng.index(n_stops)
                } else {
                    0
                };
                dies.then_some(at)
            })
            .collect();
        let degraded = (0..n_stops)
            .map(|_| {
                let hit = degrade_rng.unit() < self.degrade_prob;
                let f = self.degrade_floor + degrade_rng.unit() * (1.0 - self.degrade_floor);
                hit.then_some(f)
            })
            .collect();
        let stalls = (0..n_stops)
            .map(|_| {
                let hit = stall_rng.unit() < self.stall_prob;
                let extra = stall_rng.unit() * self.stall_slowdown_max;
                if hit {
                    1.0 + extra
                } else {
                    1.0
                }
            })
            .collect();
        let failed_attempts = (0..n_stops)
            .map(|_| {
                let mut fails = 0u32;
                // Bounded: at most max_retries + 1 attempts are ever made,
                // so draw exactly that many outcomes.
                for _ in 0..=self.max_retries {
                    if fail_rng.unit() < self.charge_fail_prob {
                        fails += 1;
                    } else {
                        break;
                    }
                }
                fails
            })
            .collect();
        FaultSchedule {
            deaths,
            degraded,
            stalls,
            failed_attempts,
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// A fault model field was out of range.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultModelError {
    /// A probability fell outside `[0, 1]` (or was not finite).
    BadProbability {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A magnitude (factor, duration) was not finite or out of range.
    BadMagnitude {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for FaultModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModelError::BadProbability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            FaultModelError::BadMagnitude { field, value } => {
                write!(f, "{field} is out of range: {value}")
            }
        }
    }
}

impl std::error::Error for FaultModelError {}

/// The concrete faults of one round: everything the executor needs,
/// pinned to stop indices of the plan being executed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Per sensor: `Some(stop)` if the sensor dies just before the
    /// charger departs for stop `stop` of this round.
    pub deaths: Vec<Option<usize>>,
    /// Per stop: `Some(factor)` if charging efficiency is degraded to
    /// `factor` (in `(0, 1)`) for the whole dwell.
    pub degraded: Vec<Option<f64>>,
    /// Per stop: drive-time multiplier of the leg into the stop
    /// (`1.0` = no stall).
    pub stalls: Vec<f64>,
    /// Per stop: number of transient failed charge attempts before the
    /// first success. A value above the model's `max_retries` means the
    /// stop is unrecoverable in place.
    pub failed_attempts: Vec<u32>,
}

impl FaultSchedule {
    /// An empty schedule (no faults) sized for a plan.
    pub fn clean(n_sensors: usize, n_stops: usize) -> Self {
        FaultSchedule {
            deaths: vec![None; n_sensors],
            degraded: vec![None; n_stops],
            stalls: vec![1.0; n_stops],
            failed_attempts: vec![0; n_stops],
        }
    }

    /// Total number of scheduled faults (deaths + degradations + stalls
    /// + failed attempts).
    pub fn fault_count(&self) -> usize {
        self.deaths.iter().flatten().count()
            + self.degraded.iter().flatten().count()
            + self.stalls.iter().filter(|&&s| s > 1.0).count()
            + self.failed_attempts.iter().map(|&k| k as usize).sum::<usize>() // cast-ok: retry count fits usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let fm = FaultModel::with_rate(42, 0.3);
        let a = fm.schedule(7, 50, 12);
        let b = fm.schedule(7, 50, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn different_rounds_differ() {
        let fm = FaultModel::with_rate(42, 0.5);
        let a = fm.schedule(1, 80, 20);
        let b = fm.schedule(2, 80, 20);
        assert_ne!(a, b, "independent rounds drew identical schedules");
    }

    #[test]
    fn zero_rate_is_clean() {
        let fm = FaultModel::with_rate(9, 0.0);
        let s = fm.schedule(3, 40, 10);
        assert_eq!(s, FaultSchedule::clean(40, 10));
        assert_eq!(s.fault_count(), 0);
    }

    #[test]
    fn rates_scale_fault_counts() {
        let low: usize = (0..20)
            .map(|r| FaultModel::with_rate(1, 0.05).schedule(r, 100, 30).fault_count())
            .sum();
        let high: usize = (0..20)
            .map(|r| FaultModel::with_rate(1, 0.6).schedule(r, 100, 30).fault_count())
            .sum();
        assert!(high > 4 * low, "high rate {high} vs low rate {low}");
    }

    #[test]
    fn death_stops_in_range() {
        let fm = FaultModel::with_rate(5, 1.0);
        let s = fm.schedule(0, 200, 7);
        for d in s.deaths.iter().flatten() {
            assert!(*d < 7);
        }
        for f in s.degraded.iter().flatten() {
            assert!((0.5..1.0).contains(f), "factor {f} out of range");
        }
    }

    #[test]
    fn failed_attempts_bounded() {
        let fm = FaultModel {
            charge_fail_prob: 1.0,
            max_retries: 3,
            ..FaultModel::none()
        };
        let s = fm.schedule(0, 10, 5);
        for &k in &s.failed_attempts {
            assert_eq!(k, 4, "always-failing stop must exhaust all attempts");
        }
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut fm = FaultModel::none();
        fm.death_prob = 1.5;
        assert!(matches!(
            fm.validate(),
            Err(FaultModelError::BadProbability { field: "death_prob", .. })
        ));
        let mut fm = FaultModel::none();
        fm.degrade_floor = 0.0;
        assert!(fm.validate().is_err());
        let mut fm = FaultModel::none();
        fm.backoff_s = Seconds(f64::NAN);
        assert!(fm.validate().is_err());
        assert!(FaultModel::with_rate(0, 0.7).validate().is_ok());
        let err = FaultModelError::BadProbability { field: "x", value: 2.0 };
        assert!(!err.to_string().is_empty());
    }
}

//! Planner configuration.

use std::fmt;

use bc_tsp::SolveConfig;
use bc_units::{Meters, Watts};
use bc_wpt::{ChargingModel, EnergyModel};

use crate::generation::BundleStrategy;

/// A [`PlannerConfig`] field was rejected by [`PlannerConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The bundle radius is not a positive finite number.
    BadBundleRadius {
        /// The rejected value.
        value: Meters,
    },
    /// The charging model's source power is not a positive finite number.
    BadChargePower {
        /// The rejected value.
        value: Watts,
    },
    /// The charging model's decay law is itself invalid.
    BadChargingLaw {
        /// Explanation from [`bc_wpt::Law::validate`].
        reason: String,
    },
    /// A count field that must be positive is zero.
    EmptyField {
        /// Name of the offending field.
        field: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadBundleRadius { value } => {
                write!(
                    f,
                    "bundle_radius must be positive and finite, got {}",
                    value.0
                )
            }
            ConfigError::BadChargePower { value } => {
                write!(
                    f,
                    "charging source power must be positive and finite, got {}",
                    value.0
                )
            }
            ConfigError::BadChargingLaw { reason } => {
                write!(f, "invalid charging law: {reason}")
            }
            ConfigError::EmptyField { field } => {
                write!(f, "{field} must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How a bundle's dwell time is determined.
///
/// The paper's text fixes the dwell by "the sensor which is the farthest
/// away from the anchor point"; [`DwellPolicy::Realized`] implements that
/// literally. [`DwellPolicy::RadiusWorstCase`] instead charges for the
/// full generation radius `r` whenever the bundle has more than one
/// member — the conservative schedule a charger would use without
/// per-sensor distance knowledge, and an ablation that reproduces the
/// steeper charging-time growth of the paper's Fig. 6(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DwellPolicy {
    /// Dwell until the realized farthest member is fully charged.
    #[default]
    Realized,
    /// Dwell as if the farthest member sat on the bundle-radius boundary.
    RadiusWorstCase,
}

/// Everything a planner needs besides the network itself.
///
/// Use [`PlannerConfig::paper_sim`] or [`PlannerConfig::paper_testbed`]
/// for the two environments of the paper's evaluation, then adjust fields
/// as needed.
///
/// # Example
///
/// ```
/// use bc_core::PlannerConfig;
/// use bc_units::Meters;
///
/// let mut cfg = PlannerConfig::paper_sim(20.0);
/// cfg.opt_distance_steps = 64; // finer BC-OPT anchor sweep
/// assert_eq!(cfg.bundle_radius, Meters(20.0));
/// ```
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Charging bundle radius `r`.
    pub bundle_radius: Meters,
    /// Wireless charging model (Eq. 1 parameters).
    pub charging: ChargingModel,
    /// Charger energy accounting (`E_m`, `p_c`).
    pub energy: EnergyModel,
    /// Bundle generation strategy used by BC / BC-OPT.
    pub bundle_strategy: BundleStrategy,
    /// TSP pipeline settings.
    pub tsp: SolveConfig,
    /// Include the base station as a zero-dwell tour stop. The paper's
    /// simulations optimise the tour among charging positions only, so
    /// this defaults to `false`.
    pub include_base: bool,
    /// Number of displacement radii `d` BC-OPT tries per anchor
    /// (Algorithm 3's `for d = 0 : max` discretisation).
    pub opt_distance_steps: usize,
    /// Maximum full sweeps BC-OPT makes over the tour before stopping.
    pub opt_max_rounds: usize,
    /// How BC sets dwell times (SC, CSS and BC-OPT always use realized
    /// distances).
    pub dwell_policy: DwellPolicy,
}

impl PlannerConfig {
    /// Simulation environment of Section VI-A with the given bundle
    /// radius (in metres).
    pub fn paper_sim(bundle_radius: f64) -> Self {
        PlannerConfig {
            bundle_radius: Meters(bundle_radius),
            charging: ChargingModel::paper_sim(),
            energy: EnergyModel::paper_sim(),
            bundle_strategy: BundleStrategy::Greedy,
            tsp: SolveConfig::default(),
            include_base: false,
            opt_distance_steps: 24,
            opt_max_rounds: 8,
            dwell_policy: DwellPolicy::default(),
        }
    }

    /// Testbed environment of Section VII with the given bundle radius
    /// (in metres).
    pub fn paper_testbed(bundle_radius: f64) -> Self {
        PlannerConfig {
            bundle_radius: Meters(bundle_radius),
            charging: ChargingModel::paper_testbed(),
            energy: EnergyModel::paper_testbed(),
            bundle_strategy: BundleStrategy::Greedy,
            tsp: SolveConfig::default(),
            include_base: false,
            opt_distance_steps: 24,
            opt_max_rounds: 8,
            dwell_policy: DwellPolicy::default(),
        }
    }

    /// Checks that the configuration can drive a planner at all: the
    /// bundle radius is a positive finite number, the charging model has
    /// positive finite source power and a valid decay law, and the
    /// BC-OPT sweep counts are non-zero.
    ///
    /// [`crate::planner::try_run`] calls this before dispatching, so a
    /// bad configuration surfaces as a typed error instead of a `NaN`
    /// plan or a panic deep inside a planner.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.bundle_radius.is_finite() || self.bundle_radius.0 <= 0.0 {
            return Err(ConfigError::BadBundleRadius {
                value: self.bundle_radius,
            });
        }
        let power = self.charging.source_power();
        if !power.is_finite() || power.0 <= 0.0 {
            return Err(ConfigError::BadChargePower { value: power });
        }
        self.charging
            .law()
            .validate()
            .map_err(|reason| ConfigError::BadChargingLaw { reason })?;
        if self.opt_distance_steps == 0 {
            return Err(ConfigError::EmptyField {
                field: "opt_distance_steps",
            });
        }
        if self.opt_max_rounds == 0 {
            return Err(ConfigError::EmptyField {
                field: "opt_max_rounds",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(PlannerConfig::paper_sim(30.0).validate().is_ok());
        assert!(PlannerConfig::paper_testbed(1.0).validate().is_ok());
    }

    #[test]
    fn rejects_bad_radius() {
        for r in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = PlannerConfig::paper_sim(r);
            assert!(
                matches!(cfg.validate(), Err(ConfigError::BadBundleRadius { .. })),
                "radius {r} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_zero_sweep_fields() {
        let mut cfg = PlannerConfig::paper_sim(10.0);
        cfg.opt_distance_steps = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::EmptyField {
                field: "opt_distance_steps"
            })
        );
        let mut cfg = PlannerConfig::paper_sim(10.0);
        cfg.opt_max_rounds = 0;
        assert!(matches!(cfg.validate(), Err(ConfigError::EmptyField { .. })));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = PlannerConfig::paper_sim(-3.0).validate().unwrap_err();
        assert!(err.to_string().contains("-3"));
    }

    #[test]
    fn presets_differ() {
        let sim = PlannerConfig::paper_sim(10.0);
        let tb = PlannerConfig::paper_testbed(1.0);
        assert!(sim.charging.beta().unwrap() > tb.charging.beta().unwrap());
        assert_eq!(sim.bundle_radius, Meters(10.0));
        assert_eq!(tb.bundle_radius, Meters(1.0));
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = PlannerConfig::paper_sim(10.0);
        assert!(cfg.opt_distance_steps > 0);
        assert!(cfg.opt_max_rounds > 0);
        assert!(!cfg.include_base);
    }
}

//! Charging plans: ordered stops, energy accounting and validation.

use std::fmt;

use bc_geom::Point;
use bc_units::{Joules, Meters, Seconds};
use bc_wpt::{ChargingModel, EnergyModel};
use bc_wsn::Network;

use crate::ChargingBundle;

/// One stop of the charging tour: the charger parks at
/// `bundle.anchor` and transmits for `dwell`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stop {
    /// The bundle served at this stop. A zero-dwell marker stop (e.g. the
    /// base station) is represented by an empty member list.
    pub bundle: ChargingBundle,
    /// Dwell time.
    pub dwell: Seconds,
}

impl Stop {
    /// Creates a stop for a bundle, computing the dwell time that fully
    /// charges every member (the per-bundle worst case of the paper).
    pub fn for_bundle(bundle: ChargingBundle, net: &Network, model: &ChargingModel) -> Self {
        let dwell = bundle.dwell_time(net, model);
        Stop { bundle, dwell }
    }

    /// A zero-dwell way-point (used for the base station when the tour is
    /// configured to include it).
    pub fn waypoint(p: Point) -> Self {
        Stop {
            bundle: ChargingBundle {
                sensors: Vec::new(),
                anchor: p,
                enclosing_radius: Meters(0.0),
            },
            dwell: Seconds(0.0),
        }
    }

    /// Position of the stop.
    pub fn anchor(&self) -> Point {
        self.bundle.anchor
    }
}

/// A complete closed charging tour.
///
/// Stops are listed in visit order; the charger returns from the last
/// stop to the first. Every planner produces one of these, and all
/// metrics in the evaluation are derived from it via
/// [`ChargingPlan::metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChargingPlan {
    /// Stops in visit order.
    pub stops: Vec<Stop>,
    /// Number of sensors the plan serves (for per-sensor averages).
    pub num_sensors: usize,
}

/// Scalar summary of a plan under an energy model — the quantities
/// plotted in Figs. 6 and 12–16.
#[derive(Debug, Clone, Copy)]
pub struct Metrics {
    /// Number of charging stops (bundles).
    pub num_stops: usize,
    /// Closed tour length.
    pub tour_length_m: Meters,
    /// Total charging (dwell) time.
    pub charge_time_s: Seconds,
    /// Movement energy.
    pub move_energy_j: Joules,
    /// Charging energy.
    pub charge_energy_j: Joules,
    /// Total operating energy — the BTO objective.
    pub total_energy_j: Joules,
    /// Total charging time divided by the number of sensors.
    pub avg_charge_time_per_sensor_s: Seconds,
    /// Per-stage planner wall-times, when the plan came from the staged
    /// pipeline ([`crate::context::StagedPlan::metrics`]); `None` for
    /// plans built directly. Excluded from equality: timings describe
    /// the run that produced the plan, not the plan itself.
    pub stage_timings: Option<crate::context::StageTimings>,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        self.num_stops == other.num_stops
            && self.tour_length_m == other.tour_length_m
            && self.charge_time_s == other.charge_time_s
            && self.move_energy_j == other.move_energy_j
            && self.charge_energy_j == other.charge_energy_j
            && self.total_energy_j == other.total_energy_j
            && self.avg_charge_time_per_sensor_s == other.avg_charge_time_per_sensor_s
    }
}

/// A plan failed validation, or a planning operation was given input it
/// cannot produce a plan for.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Some sensor is not assigned to any stop.
    Unassigned {
        /// Index of the first unassigned sensor.
        sensor: usize,
    },
    /// The planner configuration is invalid (see
    /// [`crate::PlannerConfig::validate`]).
    Config(crate::config::ConfigError),
    /// A sensor index does not exist in the network.
    SensorOutOfBounds {
        /// The offending index.
        sensor: usize,
        /// Number of sensors in the network.
        len: usize,
    },
    /// A sensor's energy demand is not a non-negative finite number.
    InvalidDemand {
        /// The rejected demand.
        value: Joules,
    },
    /// A sensor is assigned to more than one stop.
    DuplicateAssignment {
        /// The offending sensor.
        sensor: usize,
    },
    /// A stop's dwell time undercharges its worst member.
    Undercharged {
        /// Index of the stop in visit order.
        stop: usize,
        /// The undercharged sensor.
        sensor: usize,
        /// Energy actually delivered.
        delivered: Joules,
        /// Energy demanded.
        demanded: Joules,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Unassigned { sensor } => {
                write!(f, "sensor {sensor} is not served by any stop")
            }
            PlanError::Config(err) => write!(f, "invalid planner configuration: {err}"),
            PlanError::SensorOutOfBounds { sensor, len } => {
                write!(f, "sensor index {sensor} is out of bounds for a network of {len}")
            }
            PlanError::InvalidDemand { value } => {
                write!(
                    f,
                    "sensor demand must be non-negative and finite, got {} J",
                    value.0
                )
            }
            PlanError::DuplicateAssignment { sensor } => {
                write!(f, "sensor {sensor} is assigned to multiple stops")
            }
            PlanError::Undercharged {
                stop,
                sensor,
                delivered,
                demanded,
            } => write!(
                f,
                "stop {stop} delivers {:.6} J to sensor {sensor}, below demand {:.6} J",
                delivered.0, demanded.0
            ),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Config(err) => Some(err),
            _ => None,
        }
    }
}

impl From<crate::config::ConfigError> for PlanError {
    fn from(err: crate::config::ConfigError) -> Self {
        PlanError::Config(err)
    }
}

impl ChargingPlan {
    /// Builds a plan from ordered stops.
    pub fn new(stops: Vec<Stop>, num_sensors: usize) -> Self {
        ChargingPlan { stops, num_sensors }
    }

    /// Number of stops with a non-empty bundle.
    pub fn num_charging_stops(&self) -> usize {
        self.stops.iter().filter(|s| !s.bundle.is_empty()).count()
    }

    /// Length of the closed tour through the stops.
    pub fn tour_length(&self) -> Meters {
        let n = self.stops.len();
        if n < 2 {
            return Meters(0.0);
        }
        let mut total = 0.0;
        for i in 0..n {
            total += self.stops[i]
                .anchor()
                .distance(self.stops[(i + 1) % n].anchor());
        }
        Meters(total)
    }

    /// Total dwell time across all stops.
    pub fn total_dwell(&self) -> Seconds {
        self.stops.iter().map(|s| s.dwell).sum()
    }

    /// Computes the scalar metrics of the plan under an energy model.
    pub fn metrics(&self, energy: &EnergyModel) -> Metrics {
        let tour = self.tour_length();
        let dwell = self.total_dwell();
        let move_energy = energy.movement_energy(tour);
        let charge_energy = energy.charging_energy(dwell);
        Metrics {
            num_stops: self.num_charging_stops(),
            tour_length_m: tour,
            charge_time_s: dwell,
            move_energy_j: move_energy,
            charge_energy_j: charge_energy,
            total_energy_j: move_energy + charge_energy,
            avg_charge_time_per_sensor_s: if self.num_sensors == 0 {
                Seconds(0.0)
            } else {
                dwell / self.num_sensors as f64 // cast-ok: sensor count to mean divisor
            },
            stage_timings: None,
        }
    }

    /// Validates the plan against its network: every sensor is served by
    /// exactly one stop, and every stop's dwell time delivers at least
    /// the demanded energy to each of its members.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] found.
    pub fn validate(&self, net: &Network, model: &ChargingModel) -> Result<(), PlanError> {
        let mut assigned = vec![false; net.len()];
        for (si, stop) in self.stops.iter().enumerate() {
            for &s in &stop.bundle.sensors {
                if assigned[s] {
                    return Err(PlanError::DuplicateAssignment { sensor: s });
                }
                assigned[s] = true;
                let d = stop.bundle.member_distance(s, net);
                let delivered = model.delivered_energy(d, stop.dwell);
                let demanded = net.sensor(s).demand;
                if delivered + Joules(1e-9) < demanded {
                    return Err(PlanError::Undercharged {
                        stop: si,
                        sensor: s,
                        delivered,
                        demanded,
                    });
                }
            }
        }
        if let Some(sensor) = assigned.iter().position(|&a| !a) {
            return Err(PlanError::Unassigned { sensor });
        }
        Ok(())
    }
}

impl fmt::Display for ChargingPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ChargingPlan({} stops, tour {:.1}, dwell {:.1})",
            self.num_charging_stops(),
            self.tour_length(),
            self.total_dwell()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_geom::Aabb;
    use bc_wsn::deploy;

    fn make_plan(net: &Network, model: &ChargingModel) -> ChargingPlan {
        // One singleton stop per sensor, in index order.
        let stops = (0..net.len())
            .map(|i| {
                Stop::for_bundle(
                    ChargingBundle::from_members(vec![i], net),
                    net,
                    model,
                )
            })
            .collect();
        ChargingPlan::new(stops, net.len())
    }

    #[test]
    fn valid_singleton_plan() {
        let net = deploy::uniform(10, Aabb::square(100.0), 2.0, 1);
        let model = ChargingModel::paper_sim();
        let plan = make_plan(&net, &model);
        assert!(plan.validate(&net, &model).is_ok());
        assert_eq!(plan.num_charging_stops(), 10);
    }

    #[test]
    fn metrics_add_up() {
        let net = deploy::uniform(5, Aabb::square(100.0), 2.0, 2);
        let model = ChargingModel::paper_sim();
        let energy = EnergyModel::new(2.0, 3.0);
        let plan = make_plan(&net, &model);
        let m = plan.metrics(&energy);
        assert!((m.total_energy_j - m.move_energy_j - m.charge_energy_j).abs().0 < 1e-9);
        assert!((m.move_energy_j.0 - 2.0 * m.tour_length_m.0).abs() < 1e-9);
        assert!((m.charge_energy_j.0 - 3.0 * m.charge_time_s.0).abs() < 1e-9);
        assert!((m.avg_charge_time_per_sensor_s - m.charge_time_s / 5.0).abs().0 < 1e-12);
    }

    #[test]
    fn detects_unassigned() {
        let net = deploy::uniform(3, Aabb::square(100.0), 2.0, 3);
        let model = ChargingModel::paper_sim();
        let mut plan = make_plan(&net, &model);
        plan.stops.pop();
        assert!(matches!(
            plan.validate(&net, &model),
            Err(PlanError::Unassigned { sensor: 2 })
        ));
    }

    #[test]
    fn detects_duplicate_assignment() {
        let net = deploy::uniform(3, Aabb::square(100.0), 2.0, 3);
        let model = ChargingModel::paper_sim();
        let mut plan = make_plan(&net, &model);
        let dup = plan.stops[0].clone();
        plan.stops.push(dup);
        assert!(matches!(
            plan.validate(&net, &model),
            Err(PlanError::DuplicateAssignment { sensor: 0 })
        ));
    }

    #[test]
    fn detects_undercharge() {
        let net = deploy::uniform(2, Aabb::square(100.0), 2.0, 4);
        let model = ChargingModel::paper_sim();
        let mut plan = make_plan(&net, &model);
        plan.stops[0].dwell = plan.stops[0].dwell * 0.5;
        let err = plan.validate(&net, &model).unwrap_err();
        assert!(matches!(err, PlanError::Undercharged { stop: 0, .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn tour_length_closed_cycle() {
        let net = deploy::from_coords(
            &[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)],
            Aabb::square(20.0),
            2.0,
        );
        let model = ChargingModel::paper_sim();
        let plan = make_plan(&net, &model);
        // 10 + 10 + sqrt(200)
        assert!((plan.tour_length().0 - (20.0 + 200f64.sqrt())).abs() < 1e-9);
    }

    #[test]
    fn empty_plan() {
        let plan = ChargingPlan::new(Vec::new(), 0);
        assert_eq!(plan.tour_length(), Meters(0.0));
        assert_eq!(plan.total_dwell(), Seconds(0.0));
        let m = plan.metrics(&EnergyModel::paper_sim());
        assert_eq!(m.total_energy_j, Joules(0.0));
        assert_eq!(m.avg_charge_time_per_sensor_s, Seconds(0.0));
    }

    #[test]
    fn waypoint_stops_do_not_count_as_charging() {
        let net = deploy::uniform(2, Aabb::square(100.0), 2.0, 5);
        let model = ChargingModel::paper_sim();
        let mut plan = make_plan(&net, &model);
        plan.stops.push(Stop::waypoint(Point::ORIGIN));
        assert_eq!(plan.num_charging_stops(), 2);
        assert!(plan.validate(&net, &model).is_ok());
    }
}

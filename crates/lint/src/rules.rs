//! The rule catalog and the per-file scanner.
//!
//! Three passes share one engine:
//!
//! * the **core pass** — the original seven `cargo xtask lint` rules
//!   (cast audit, panic ban, typed quantity fields, context bypass, raw
//!   DES time, print ban, naked locks), now matched against
//!   lexer-sanitized code so literals and comments can no longer trip
//!   or suppress them;
//! * the **determinism pass** — bans the three ways nondeterminism has
//!   historically entered plan-affecting code: iteration-order-dependent
//!   collections (`HashMap`/`HashSet`) in `bc-core`/`bc-des`/`bc-serve`,
//!   wall-clock acquisition (`Instant::now`/`SystemTime::now`) outside
//!   `bc_obs::wall`, and ad-hoc `thread::spawn` outside `bc_core::par`;
//! * the **concurrency pass** — raw `Mutex`/`RwLock` acquisition inside
//!   `bc-serve` (which must route through the `bc_serve::sync` poison
//!   recovery helpers) and `static mut` anywhere.
//!
//! Every rule names an escape marker; markers live in *trailing*
//! comments and the engine's `stale-escape` rule reports any marker
//! that stopped suppressing something — so the escape inventory can
//! only shrink, never silently rot.

use crate::lexer::SourceFile;
use std::collections::BTreeSet;
use std::fmt;

/// Every rule the engine knows, across all passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// ` as f64`-style numeric cast without a `cast-ok:` audit marker.
    UnannotatedCast,
    /// `.unwrap()` / `.expect(` in library code.
    PanickingExtractor,
    /// `pub <name>_{j,s,m,…}: f64` field in a quantity crate.
    RawQuantityField,
    /// Shared planner artifact built outside `PlanContext`.
    ContextBypass,
    /// Raw `f64` time arithmetic in `bc-des` outside `clock`.
    RawTime,
    /// `println!`/`eprintln!` in library code.
    PrintBan,
    /// `.lock().unwrap()`-style poison-panicking acquisition.
    NakedLock,
    /// Any raw `.lock(`/`.read(`/`.write(` in `bc-serve` outside
    /// `bc_serve::sync`.
    RawLockAcquire,
    /// `HashMap`/`HashSet` in a plan-affecting crate.
    UnorderedCollection,
    /// `Instant::now`/`SystemTime::now` outside `bc_obs::wall`.
    WallClock,
    /// `thread::spawn` outside `bc_core::par`.
    ThreadSpawn,
    /// `static mut` anywhere in library code.
    StaticMut,
    /// An escape marker that suppresses nothing.
    StaleEscape,
    /// Workspace/crate manifest lint-config drift.
    LintTableDrift,
}

impl RuleId {
    /// Every rule, in catalog (report) order.
    pub const ALL: [RuleId; 14] = [
        RuleId::UnannotatedCast,
        RuleId::PanickingExtractor,
        RuleId::RawQuantityField,
        RuleId::ContextBypass,
        RuleId::RawTime,
        RuleId::PrintBan,
        RuleId::NakedLock,
        RuleId::RawLockAcquire,
        RuleId::UnorderedCollection,
        RuleId::WallClock,
        RuleId::ThreadSpawn,
        RuleId::StaticMut,
        RuleId::StaleEscape,
        RuleId::LintTableDrift,
    ];

    /// Stable kebab-case identifier (report key).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnannotatedCast => "unannotated-cast",
            RuleId::PanickingExtractor => "panicking-extractor",
            RuleId::RawQuantityField => "raw-quantity-field",
            RuleId::ContextBypass => "context-bypass",
            RuleId::RawTime => "raw-time",
            RuleId::PrintBan => "print-ban",
            RuleId::NakedLock => "naked-lock",
            RuleId::RawLockAcquire => "raw-lock",
            RuleId::UnorderedCollection => "det-unordered-collection",
            RuleId::WallClock => "det-wall-clock",
            RuleId::ThreadSpawn => "det-thread-spawn",
            RuleId::StaticMut => "conc-static-mut",
            RuleId::StaleEscape => "stale-escape",
            RuleId::LintTableDrift => "lint-table-drift",
        }
    }

    /// Which pass the rule belongs to.
    pub fn pass(self) -> &'static str {
        match self {
            RuleId::UnannotatedCast
            | RuleId::PanickingExtractor
            | RuleId::RawQuantityField
            | RuleId::ContextBypass
            | RuleId::RawTime
            | RuleId::PrintBan
            | RuleId::NakedLock => "core",
            RuleId::UnorderedCollection | RuleId::WallClock | RuleId::ThreadSpawn => "determinism",
            RuleId::RawLockAcquire | RuleId::StaticMut => "concurrency",
            RuleId::StaleEscape => "engine",
            RuleId::LintTableDrift => "manifest",
        }
    }

    /// The trailing-comment marker that waives the rule on a line, when
    /// the rule supports one.
    pub fn escape(self) -> Option<&'static str> {
        match self {
            RuleId::UnannotatedCast => Some("cast-ok:"),
            RuleId::PanickingExtractor => Some("panic-ok:"),
            RuleId::RawQuantityField => Some("unit-ok:"),
            RuleId::ContextBypass => Some("context-ok:"),
            RuleId::RawTime => Some("time-ok:"),
            RuleId::PrintBan => Some("print-ok:"),
            RuleId::NakedLock | RuleId::RawLockAcquire => Some("lock-ok:"),
            RuleId::UnorderedCollection | RuleId::WallClock | RuleId::ThreadSpawn => {
                Some("det-ok:")
            }
            RuleId::StaticMut => Some("conc-ok:"),
            RuleId::StaleEscape => Some("stale-ok:"),
            RuleId::LintTableDrift => None,
        }
    }

    /// The fix suggestion shown alongside a finding.
    pub fn hint(self) -> &'static str {
        match self {
            RuleId::UnannotatedCast => {
                "add `// cast-ok: <reason>` or route through bc-units"
            }
            RuleId::PanickingExtractor => {
                "return an error (see PlanError/ExecError) instead of panicking"
            }
            RuleId::RawQuantityField => {
                "use a bc-units newtype (Joules, Seconds, Meters, ...)"
            }
            RuleId::ContextBypass => {
                "build this artifact through PlanContext, or add `// context-ok: <reason>`"
            }
            RuleId::RawTime => {
                "route timestamps through des::clock (Time, seconds()/minutes()/hours()), \
                 or add `// time-ok: <reason>`"
            }
            RuleId::PrintBan => {
                "emit a bc-obs event instead of printing from library code, \
                 or add `// print-ok: <reason>`"
            }
            RuleId::NakedLock => {
                "recover from poisoning via bc_serve::sync::{lock,read,write}_recover, \
                 or add `// lock-ok: <reason>`"
            }
            RuleId::RawLockAcquire => {
                "bc-serve must acquire locks through bc_serve::sync \
                 (lock_recover/read_recover/write_recover/lock_repair), \
                 or add `// lock-ok: <reason>`"
            }
            RuleId::UnorderedCollection => {
                "iteration order feeds plans: use BTreeMap/BTreeSet (or sort before \
                 iterating) in core/des/serve/campaign, or add `// det-ok: <reason>` \
                 for membership-only use"
            }
            RuleId::WallClock => {
                "acquire wall time through bc_obs::wall::now() so determinism-sensitive \
                 code has one auditable clock source, or add `// det-ok: <reason>`"
            }
            RuleId::ThreadSpawn => {
                "use bc_core::par scoped fan-out (deterministic slot order), \
                 or add `// det-ok: <reason>`"
            }
            RuleId::StaticMut => {
                "replace `static mut` with an atomic, Mutex, or OnceLock, \
                 or add `// conc-ok: <reason>`"
            }
            RuleId::StaleEscape => {
                "this marker no longer suppresses anything: delete it \
                 (or add `// stale-ok: <reason>` if it must stay)"
            }
            RuleId::LintTableDrift => "restore the workspace lint config",
        }
    }

    /// One-line description of where the rule applies, for the report's
    /// rule catalog.
    pub fn scope_doc(self) -> &'static str {
        match self {
            RuleId::UnannotatedCast | RuleId::PanickingExtractor | RuleId::StaticMut => {
                "all library code"
            }
            RuleId::RawQuantityField => "crates/wpt, crates/core",
            RuleId::ContextBypass => {
                "all library code except crates/tsp, core::context, core::candidates"
            }
            RuleId::RawTime => "crates/des except the clock module",
            RuleId::PrintBan => "all library code except binary targets",
            RuleId::NakedLock => "all library code outside the raw-lock scope",
            RuleId::RawLockAcquire => "crates/serve except the sync module",
            RuleId::UnorderedCollection => {
                "crates/core, crates/des, crates/serve, crates/campaign, \
                 crates/obs, crates/benchcheck"
            }
            RuleId::WallClock => "all library code except bc_obs::wall and binary targets",
            RuleId::ThreadSpawn => "all library code except bc_core::par and binary targets",
            RuleId::StaleEscape => "every recognized escape marker in scanned code",
            RuleId::LintTableDrift => "root and crate manifests",
        }
    }
}

/// One finding: `file:line:col`, the offending excerpt, and (through
/// [`RuleId::hint`]) how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column of the first match on the line (0 for
    /// file-level findings such as manifest drift).
    pub col: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// The offending source line (trimmed), or a synthesized message for
    /// file-level findings.
    pub excerpt: String,
}

impl Diagnostic {
    /// Report/sort key: findings order by location first, rule second.
    pub fn sort_key(&self) -> (String, usize, usize, &'static str) {
        (self.file.clone(), self.line, self.col, self.rule.name())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {} ({})",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.excerpt.trim(),
            self.rule.hint()
        )
    }
}

/// The numeric casts that require an audit marker in library code.
const CAST_PATTERNS: [&str; 6] = [
    " as f64", " as usize", " as u64", " as u32", " as i64", " as i32",
];

/// Artifact constructions that must go through `bc_core::context` in
/// planner-layer code. The first pattern has no closing paren so the
/// `_par` variant matches too.
const CONTEXT_BYPASS_PATTERNS: [&str; 2] = [
    "CandidateFamily::pair_intersection",
    "DistanceMatrix::from_points(",
];

/// Raw time arithmetic that must stay inside `des::clock`.
const RAW_TIME_PATTERNS: [&str; 3] = ["Seconds(", "_s.0", "as_secs_f64"];

/// Print diagnostics banned from library code (`eprintln!` contains
/// `println!`, so one pattern covers both; kept separate for clarity).
const PRINT_PATTERNS: [&str; 2] = ["println!", "eprintln!"];

/// Lock acquisitions that panic on poison (workspace-wide rule).
const NAKED_LOCK_PATTERNS: [&str; 6] = [
    ".lock().unwrap()",
    ".lock().expect(",
    ".read().unwrap()",
    ".read().expect(",
    ".write().unwrap()",
    ".write().expect(",
];

/// Any raw acquisition at all (bc-serve rule: even a poison-handling
/// call site must live in `bc_serve::sync`, so the recovery policy has
/// one auditable home).
const RAW_LOCK_PATTERNS: [&str; 3] = [".lock(", ".read(", ".write("];

/// Iteration-order-dependent collections (determinism pass).
const UNORDERED_PATTERNS: [&str; 2] = ["HashMap", "HashSet"];

/// Wall-clock acquisition points (determinism pass). Holding or
/// comparing an `Instant` someone else minted is fine; minting one is
/// what must route through `bc_obs::wall`.
const WALL_CLOCK_PATTERNS: [&str; 2] = ["Instant::now", "SystemTime::now"];

/// Ad-hoc thread creation (determinism pass). `std::thread::spawn`
/// contains the pattern; `thread::scope`'s scoped spawns (`s.spawn`) do
/// not match and stay confined to `bc_core::par` by review.
const THREAD_SPAWN_PATTERNS: [&str; 1] = ["thread::spawn"];

/// `static mut` (concurrency pass).
const STATIC_MUT_PATTERNS: [&str; 1] = ["static mut"];

/// Suffixes that mark a field as a physical quantity (matching the
/// `bc-units` catalog).
const QUANTITY_SUFFIXES: [&str; 7] = ["_j", "_s", "_m", "_m2", "_w", "_mps", "_jpm"];

/// Files allowed to construct the shared planner artifacts directly.
fn context_bypass_exempt(label: &str) -> bool {
    label.contains("crates/tsp/")
        || label.ends_with("crates/core/src/context.rs")
        || label.ends_with("crates/core/src/candidates.rs")
}

/// Whether `label` falls under the raw-time rule: all of `bc-des`
/// except the clock module that owns the sanctioned conversions.
fn raw_time_scope(label: &str) -> bool {
    label.contains("crates/des/") && !label.ends_with("clock.rs")
}

/// Binary targets may print and measure wall time — they are the user
/// interface and the benchmark harnesses.
fn bin_target(label: &str) -> bool {
    label.contains("/bin/") || label.ends_with("main.rs")
}

/// Whether `label` is plan-affecting for the unordered-collection rule.
/// The profiler (`crates/obs`) and the bench comparator
/// (`crates/benchcheck`) are in scope because both render byte-stable
/// documents — hash-order iteration would break snapshot determinism.
fn det_collection_scope(label: &str) -> bool {
    label.contains("crates/core/")
        || label.contains("crates/des/")
        || label.contains("crates/serve/")
        || label.contains("crates/campaign/")
        || label.contains("crates/obs/")
        || label.contains("crates/benchcheck/")
}

/// Whether `label` falls under the bc-serve raw-lock rule.
fn raw_lock_scope(label: &str) -> bool {
    label.contains("crates/serve/") && !label.ends_with("sync.rs")
}

/// Whether `label` may acquire wall time directly: only the `bc-obs`
/// wall module (the workspace's single sanctioned clock source).
fn wall_clock_exempt(label: &str) -> bool {
    label.ends_with("crates/obs/src/wall.rs") || bin_target(label)
}

/// Whether `label` may spawn threads directly: only `bc_core::par`
/// (whose scoped fan-out is deterministic by slot order).
fn thread_spawn_exempt(label: &str) -> bool {
    label.ends_with("crates/core/src/par.rs") || bin_target(label)
}

/// Whether `label` is a quantity crate for the typed-field rule.
fn quantity_scope(label: &str) -> bool {
    label.contains("crates/wpt/") || label.contains("crates/core/")
}

/// First match column (1-based) of any of `patterns` in `code`.
fn first_match(code: &str, patterns: &[&str]) -> Option<usize> {
    patterns.iter().filter_map(|p| code.find(p)).min().map(|i| i + 1)
}

/// Scans one library source file; `label` is the workspace-relative
/// path reported in findings. Pure, so the corpus tests feed seeded
/// sources.
pub fn scan_file(label: &str, text: &str) -> Vec<Diagnostic> {
    let sf = SourceFile::parse(text);
    let mut out = Vec::new();
    // (line, marker) pairs that suppressed at least one match.
    let mut used: BTreeSet<(usize, &'static str)> = BTreeSet::new();

    let quantity_crate = quantity_scope(label);
    let lock_scope_serve = raw_lock_scope(label);

    for (idx, code) in sf.code.iter().enumerate() {
        let lineno = idx + 1;
        if sf.test_mask[idx] {
            continue;
        }
        let push = |rule: RuleId, col: usize, out: &mut Vec<Diagnostic>| {
            out.push(Diagnostic {
                file: label.to_string(),
                line: lineno,
                col,
                rule,
                excerpt: sf.raw[idx].trim().to_string(),
            });
        };
        // A rule fires unless its escape marker trails the line; either
        // way the marker's use is recorded for stale detection.
        let mut check = |rule: RuleId, found: Option<usize>, out: &mut Vec<Diagnostic>| {
            let Some(col) = found else { return };
            match rule.escape() {
                Some(marker) if sf.markers_on(lineno).contains(&marker) => {
                    used.insert((lineno, marker));
                }
                _ => push(rule, col, out),
            }
        };

        check(RuleId::UnannotatedCast, first_match(code, &CAST_PATTERNS), &mut out);

        // Lock-rule precedence: in bc-serve, any raw acquisition is the
        // finding (the fix is routing through bc_serve::sync);
        // elsewhere only the panicking forms are, and a lock line never
        // also trips the generic extractor rule (the fix differs).
        if lock_scope_serve {
            let raw = first_match(code, &RAW_LOCK_PATTERNS);
            check(RuleId::RawLockAcquire, raw, &mut out);
            if raw.is_none() {
                check(
                    RuleId::PanickingExtractor,
                    first_match(code, &[".unwrap()", ".expect("]),
                    &mut out,
                );
            }
        } else {
            let naked = first_match(code, &NAKED_LOCK_PATTERNS);
            check(RuleId::NakedLock, naked, &mut out);
            if naked.is_none() {
                check(
                    RuleId::PanickingExtractor,
                    first_match(code, &[".unwrap()", ".expect("]),
                    &mut out,
                );
            }
        }

        if !context_bypass_exempt(label) {
            check(RuleId::ContextBypass, first_match(code, &CONTEXT_BYPASS_PATTERNS), &mut out);
        }
        if raw_time_scope(label) {
            check(RuleId::RawTime, first_match(code, &RAW_TIME_PATTERNS), &mut out);
        }
        if !bin_target(label) {
            check(RuleId::PrintBan, first_match(code, &PRINT_PATTERNS), &mut out);
        }
        if det_collection_scope(label) {
            check(RuleId::UnorderedCollection, first_match(code, &UNORDERED_PATTERNS), &mut out);
        }
        if !wall_clock_exempt(label) {
            check(RuleId::WallClock, first_match(code, &WALL_CLOCK_PATTERNS), &mut out);
        }
        if !thread_spawn_exempt(label) {
            check(RuleId::ThreadSpawn, first_match(code, &THREAD_SPAWN_PATTERNS), &mut out);
        }
        check(RuleId::StaticMut, first_match(code, &STATIC_MUT_PATTERNS), &mut out);

        if quantity_crate {
            if let Some(decl) = raw_quantity_field(code.trim_start()) {
                let col = code.find(decl.trim_end()).map_or(1, |i| i + 1);
                let found = Some(col);
                check(RuleId::RawQuantityField, found, &mut out);
            }
        }
    }

    // Stale markers: any recognized marker that suppressed nothing.
    for (idx, _) in sf.raw.iter().enumerate() {
        let lineno = idx + 1;
        if sf.test_mask[idx] {
            continue;
        }
        let markers = sf.markers_on(lineno);
        if markers.contains(&"stale-ok:") {
            continue;
        }
        for &marker in markers {
            if marker == "stale-ok:" || used.contains(&(lineno, marker)) {
                continue;
            }
            out.push(Diagnostic {
                file: label.to_string(),
                line: lineno,
                col: sf.raw[idx].find(marker).map_or(1, |i| i + 1),
                rule: RuleId::StaleEscape,
                excerpt: format!("`{marker}` suppresses nothing on this line"),
            });
        }
    }

    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out
}

/// Returns the declaration when `line` is a `pub <name>_<unit>: f64`
/// struct field whose name carries a quantity suffix. `line` is
/// sanitized code, so trailing comments arrive pre-blanked.
fn raw_quantity_field(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("pub ")?;
    let colon = rest.find(':')?;
    let (name, ty) = rest.split_at(colon);
    let name = name.trim();
    let ty = ty[1..].trim().trim_end_matches(',');
    if ty != "f64" {
        return None;
    }
    // Field names are plain identifiers; anything else (fn signatures,
    // generics) has already failed the `find(':')` shape above or fails
    // the identifier check here.
    if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    QUANTITY_SUFFIXES
        .iter()
        .any(|s| name.ends_with(s))
        .then_some(line)
}

//! The seeded self-test corpus: every rule exercised with at least one
//! positive, one negative, and one escape-marker case, plus regression
//! pins for the blind spots that motivated the token-aware engine
//! (string-literal false positives, trailing-comment false positives,
//! library code after an inline test module, markers that only count
//! when they trail real code).
//!
//! The corpus is a public module (not `#[cfg(test)]`) so the root
//! workspace test suite can run it: `cargo test -q` at the workspace
//! root only builds the root package's tests, and the acceptance
//! criterion wants the corpus in tier 1.

use crate::manifest::{lint_table_violations, manifest_opts_into_lints};
use crate::rules::{scan_file, RuleId};

/// One seeded source and the findings it must produce.
#[derive(Debug)]
pub struct Case {
    /// Name shown in failure messages.
    pub name: &'static str,
    /// Workspace-relative label driving the scope predicates.
    pub label: &'static str,
    /// The seeded source.
    pub source: &'static str,
    /// Expected `(rule, line)` pairs in report order.
    pub expect: &'static [(RuleId, usize)],
}

/// The full corpus.
pub const CASES: &[Case] = &[
    // --- unannotated-cast ---------------------------------------------
    Case {
        name: "cast-positive",
        label: "crates/sim/src/x.rs",
        source: "fn f(n: usize) -> f64 {\n    n as f64\n}\n",
        expect: &[(RuleId::UnannotatedCast, 2)],
    },
    Case {
        name: "cast-negative",
        label: "crates/sim/src/x.rs",
        source: "fn f(n: u8) -> f64 {\n    f64::from(n)\n}\n",
        expect: &[],
    },
    Case {
        name: "cast-escape",
        label: "crates/sim/src/x.rs",
        source: "fn f(n: usize) -> f64 {\n    n as f64 // cast-ok: count to float\n}\n",
        expect: &[],
    },
    // --- panicking-extractor ------------------------------------------
    Case {
        name: "panic-positive",
        label: "crates/geom/src/x.rs",
        source: "fn f() {\n    g().unwrap();\n    h().expect(\"h\");\n}\n",
        expect: &[(RuleId::PanickingExtractor, 2), (RuleId::PanickingExtractor, 3)],
    },
    Case {
        name: "panic-negative",
        label: "crates/geom/src/x.rs",
        source: "fn f() {\n    let x = g().unwrap_or_else(|_| 0);\n    let y = h().unwrap_or(1);\n}\n",
        expect: &[],
    },
    Case {
        name: "panic-escape",
        label: "crates/geom/src/x.rs",
        source: "fn f() {\n    g().unwrap(); // panic-ok: invariant upheld by caller\n}\n",
        expect: &[],
    },
    // --- raw-quantity-field -------------------------------------------
    Case {
        name: "unit-positive",
        label: "crates/core/src/plan.rs",
        source: "pub struct S {\n    pub total_energy_j: f64,\n    pub count: usize,\n}\n",
        expect: &[(RuleId::RawQuantityField, 2)],
    },
    Case {
        name: "unit-negative-typed-and-out-of-scope",
        label: "crates/core/src/plan.rs",
        source: "pub struct S {\n    pub total_energy_j: Joules,\n    pub efficiency: f64,\n}\n",
        expect: &[],
    },
    Case {
        name: "unit-escape",
        label: "crates/core/src/plan.rs",
        source: "pub struct S {\n    pub total_energy_j: f64, // unit-ok: serde wire format\n}\n",
        expect: &[],
    },
    // --- context-bypass -----------------------------------------------
    Case {
        name: "context-positive",
        label: "crates/sim/src/x.rs",
        source: "fn f(net: &Network) {\n    let fam = CandidateFamily::pair_intersection_par(net, 10.0, 4);\n    let m = DistanceMatrix::from_points(net.positions());\n}\n",
        expect: &[(RuleId::ContextBypass, 2), (RuleId::ContextBypass, 3)],
    },
    Case {
        name: "context-negative-exempt-crate",
        label: "crates/tsp/src/lib.rs",
        source: "fn f() { let m = DistanceMatrix::from_points(&pts); }\n",
        expect: &[],
    },
    Case {
        name: "context-escape",
        label: "crates/core/src/terrain.rs",
        source: "fn f() {\n    let m = DistanceMatrix::from_points(&pts); // context-ok: no net here\n}\n",
        expect: &[],
    },
    // --- raw-time ------------------------------------------------------
    Case {
        name: "time-positive",
        label: "crates/des/src/engine.rs",
        source: "fn f() {\n    let t = Seconds(3.0);\n    let raw = horizon_s.0;\n    let d = dur.as_secs_f64();\n}\n",
        expect: &[(RuleId::RawTime, 2), (RuleId::RawTime, 3), (RuleId::RawTime, 4)],
    },
    Case {
        name: "time-negative-clock-module",
        label: "crates/des/src/clock.rs",
        source: "fn f() {\n    let t = Seconds(3.0);\n}\n",
        expect: &[],
    },
    Case {
        name: "time-escape",
        label: "crates/des/src/engine.rs",
        source: "fn f() {\n    let t = Seconds(0.0); // time-ok: report boundary\n}\n",
        expect: &[],
    },
    // --- print-ban -----------------------------------------------------
    Case {
        name: "print-positive",
        label: "crates/geom/src/x.rs",
        source: "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n}\n",
        expect: &[(RuleId::PrintBan, 2), (RuleId::PrintBan, 3)],
    },
    Case {
        name: "print-negative-bin-target",
        label: "crates/sim/src/bin/repro.rs",
        source: "fn f() {\n    println!(\"x\");\n}\n",
        expect: &[],
    },
    Case {
        name: "print-escape",
        label: "crates/geom/src/x.rs",
        source: "fn f() {\n    eprintln!(\"x\"); // print-ok: fatal-path diagnostics\n}\n",
        expect: &[],
    },
    // --- naked-lock (outside bc-serve) ---------------------------------
    Case {
        name: "naked-lock-positive",
        label: "crates/geom/src/x.rs",
        source: "fn f() {\n    let a = m.lock().unwrap();\n    let b = rw.read().unwrap();\n    let c = rw.write().expect(\"w\");\n}\n",
        expect: &[
            (RuleId::NakedLock, 2),
            (RuleId::NakedLock, 3),
            (RuleId::NakedLock, 4),
        ],
    },
    Case {
        name: "naked-lock-negative-recover-helper",
        label: "crates/geom/src/x.rs",
        source: "fn f() {\n    let g = lock_recover(&m);\n}\n",
        expect: &[],
    },
    Case {
        name: "naked-lock-escape",
        label: "crates/geom/src/x.rs",
        source: "fn f() {\n    let g = m.lock().unwrap(); // lock-ok: single-threaded setup\n}\n",
        expect: &[],
    },
    Case {
        name: "naked-lock-precedence-plain-unwrap-still-extractor",
        label: "crates/geom/src/x.rs",
        source: "fn f() {\n    g().unwrap();\n}\n",
        expect: &[(RuleId::PanickingExtractor, 2)],
    },
    // --- raw-lock (inside bc-serve) ------------------------------------
    Case {
        name: "raw-lock-positive-even-with-poison-handling",
        label: "crates/serve/src/service.rs",
        source: "fn f() {\n    let g = match m.lock() {\n        Ok(g) => g,\n        Err(p) => p.into_inner(),\n    };\n}\n",
        expect: &[(RuleId::RawLockAcquire, 2)],
    },
    Case {
        name: "raw-lock-negative-sync-module",
        label: "crates/serve/src/sync.rs",
        source: "fn f() {\n    let g = m.lock();\n}\n",
        expect: &[],
    },
    Case {
        name: "raw-lock-escape",
        label: "crates/serve/src/loadgen.rs",
        source: "fn f() {\n    let g = m.lock(); // lock-ok: bench-only fast path\n}\n",
        expect: &[],
    },
    Case {
        name: "raw-lock-serve-plain-unwrap-still-extractor",
        label: "crates/serve/src/service.rs",
        source: "fn f() {\n    g().unwrap();\n}\n",
        expect: &[(RuleId::PanickingExtractor, 2)],
    },
    // --- det-unordered-collection --------------------------------------
    Case {
        // The seeded HashMap *iteration* violation the acceptance
        // criteria call for: plan-affecting fold over unordered entries.
        name: "unordered-positive-iteration",
        label: "crates/core/src/gen.rs",
        source: "use std::collections::HashMap;\nfn total(m: &HashMap<u32, f64>) -> f64 {\n    let mut total = 0.0;\n    for (_k, v) in m.iter() {\n        total += v;\n    }\n    total\n}\n",
        expect: &[
            (RuleId::UnorderedCollection, 1),
            (RuleId::UnorderedCollection, 2),
        ],
    },
    Case {
        name: "unordered-negative-btreemap",
        label: "crates/core/src/gen.rs",
        source: "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, f64>) {}\n",
        expect: &[],
    },
    Case {
        name: "unordered-negative-out-of-scope",
        label: "crates/geom/src/x.rs",
        source: "use std::collections::HashMap;\n",
        expect: &[],
    },
    Case {
        name: "unordered-escape",
        label: "crates/core/src/gen.rs",
        source: "use std::collections::HashSet; // det-ok: membership-only, never iterated\n",
        expect: &[],
    },
    // --- det-wall-clock ------------------------------------------------
    Case {
        name: "wall-clock-positive",
        label: "crates/core/src/x.rs",
        source: "fn f() {\n    let t0 = std::time::Instant::now();\n    let w = SystemTime::now();\n}\n",
        expect: &[(RuleId::WallClock, 2), (RuleId::WallClock, 3)],
    },
    Case {
        name: "wall-clock-negative-wall-module",
        label: "crates/obs/src/wall.rs",
        source: "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
        expect: &[],
    },
    Case {
        name: "wall-clock-negative-bin-target",
        label: "crates/sim/src/bin/repro.rs",
        source: "fn f() {\n    let t0 = std::time::Instant::now();\n}\n",
        expect: &[],
    },
    Case {
        name: "wall-clock-escape",
        label: "crates/serve/src/x.rs",
        source: "fn f() {\n    let t0 = Instant::now(); // det-ok: latency metric only, never plans\n}\n",
        expect: &[],
    },
    // --- det-thread-spawn ----------------------------------------------
    Case {
        name: "thread-spawn-positive",
        label: "crates/serve/src/x.rs",
        source: "fn f() {\n    std::thread::spawn(move || work());\n}\n",
        expect: &[(RuleId::ThreadSpawn, 2)],
    },
    Case {
        name: "thread-spawn-negative-par-module",
        label: "crates/core/src/par.rs",
        source: "fn f() {\n    std::thread::spawn(move || work());\n}\n",
        expect: &[],
    },
    Case {
        name: "thread-spawn-escape",
        label: "crates/serve/src/x.rs",
        source: "fn f() {\n    std::thread::spawn(run); // det-ok: long-lived worker, joined at drop\n}\n",
        expect: &[],
    },
    // --- conc-static-mut -----------------------------------------------
    Case {
        name: "static-mut-positive",
        label: "crates/geom/src/x.rs",
        source: "static mut COUNTER: u32 = 0;\n",
        expect: &[(RuleId::StaticMut, 1)],
    },
    Case {
        name: "static-mut-negative-atomic",
        label: "crates/geom/src/x.rs",
        source: "static COUNTER: AtomicU32 = AtomicU32::new(0);\n",
        expect: &[],
    },
    Case {
        name: "static-mut-escape",
        label: "crates/geom/src/x.rs",
        source: "static mut SCRATCH: [u8; 64] = [0; 64]; // conc-ok: ffi scratch, single-threaded init\n",
        expect: &[],
    },
    // --- stale-escape ---------------------------------------------------
    Case {
        name: "stale-positive",
        label: "crates/core/src/x.rs",
        source: "fn f() -> u32 {\n    1 // cast-ok: nothing is cast here\n}\n",
        expect: &[(RuleId::StaleEscape, 2)],
    },
    Case {
        name: "stale-negative-marker-in-use",
        label: "crates/core/src/x.rs",
        source: "fn f(n: usize) -> f64 {\n    n as f64 // cast-ok: count to float\n}\n",
        expect: &[],
    },
    Case {
        name: "stale-escape-meta-marker",
        label: "crates/core/src/x.rs",
        source: "fn f() -> u32 {\n    1 // cast-ok: dormant until refactor lands; stale-ok: keep\n}\n",
        expect: &[],
    },
    // --- regression pins -------------------------------------------------
    Case {
        // The old scanner stopped at the first `#[cfg(test)]` line;
        // library code after an inline test module went unscanned.
        name: "regression-code-after-inline-test-module",
        label: "crates/core/src/x.rs",
        source: "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { h().unwrap(); }\n}\nfn late() {\n    i().unwrap();\n}\n",
        expect: &[(RuleId::PanickingExtractor, 7)],
    },
    Case {
        name: "regression-cfg-test-on-single-item",
        label: "crates/core/src/x.rs",
        source: "#[cfg(test)]\nfn helper() { x().unwrap(); }\nfn real() { y().unwrap(); }\n",
        expect: &[(RuleId::PanickingExtractor, 3)],
    },
    Case {
        // Patterns inside string literals are not code.
        name: "regression-string-literal-no-false-positive",
        label: "crates/core/src/x.rs",
        source: "fn f() -> String {\n    \"call .unwrap() and n as f64\".to_string()\n}\n",
        expect: &[],
    },
    Case {
        name: "regression-raw-string-no-false-positive",
        label: "crates/core/src/x.rs",
        source: "fn f() -> &'static str {\n    r#\"contains .unwrap() and a \" quote\"#\n}\n",
        expect: &[],
    },
    Case {
        // Patterns inside trailing (or nested block) comments are not code.
        name: "regression-trailing-comment-no-false-positive",
        label: "crates/core/src/x.rs",
        source: "fn f() {\n    g(); // then .unwrap() the result as f64\n}\n",
        expect: &[],
    },
    Case {
        name: "regression-nested-block-comment-no-false-positive",
        label: "crates/core/src/x.rs",
        source: "/* .unwrap() /* as f64 */ .expect( */\nfn f() {\n    g();\n}\n",
        expect: &[],
    },
    Case {
        // A marker only counts when it trails real code in a comment.
        name: "regression-marker-in-string-does-not-suppress",
        label: "crates/sim/src/x.rs",
        source: "fn f(n: usize) -> f64 {\n    let _tag = \"cast-ok: not a marker\";\n    n as f64\n}\n",
        expect: &[(RuleId::UnannotatedCast, 3)],
    },
    Case {
        name: "regression-marker-in-leading-comment-does-not-suppress",
        label: "crates/sim/src/x.rs",
        source: "// cast-ok: leading comments do not attach to the next line\nfn f(n: usize) -> f64 {\n    n as f64\n}\n",
        expect: &[(RuleId::UnannotatedCast, 3)],
    },
];

/// Runs every corpus case plus the manifest-rule positive/negative
/// checks.
///
/// # Errors
///
/// A newline-joined list of every mismatching case.
pub fn verify_all() -> Result<(), String> {
    let mut errors = Vec::new();
    for case in CASES {
        let got: Vec<(RuleId, usize)> = scan_file(case.label, case.source)
            .iter()
            .map(|d| (d.rule, d.line))
            .collect();
        if got != case.expect {
            errors.push(format!(
                "case `{}`: expected {:?}, got {:?}",
                case.name, case.expect, got
            ));
        }
    }

    // lint-table-drift: positive and negative, via the pure manifest core.
    let good = "[workspace.lints.clippy]\n\
                unwrap_used = \"deny\"\n\
                expect_used = \"deny\"\n\
                cast_possible_truncation = \"deny\"\n\
                cast_sign_loss = \"deny\"\n";
    if !lint_table_violations("Cargo.toml", good).is_empty() {
        errors.push("manifest negative: intact lint table reported drift".to_string());
    }
    let drifted = good.replace("expect_used = \"deny\"", "expect_used = \"warn\"");
    let v = lint_table_violations("Cargo.toml", &drifted);
    if v.len() != 1 || !v[0].excerpt.contains("expect_used") {
        errors.push(format!("manifest positive: expected one expect_used drift, got {v:?}"));
    }
    if !manifest_opts_into_lints("[lints]\nworkspace = true\n")
        || manifest_opts_into_lints("[package]\nname = \"x\"\n")
        || manifest_opts_into_lints("[lints]\nworkspace = false\n")
    {
        errors.push("manifest opt-in detection wrong".to_string());
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn corpus_passes() {
        if let Err(e) = super::verify_all() {
            panic!("corpus failures:\n{e}");
        }
    }
}

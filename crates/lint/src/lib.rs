//! `bc-lint` — the token-aware static-analysis engine behind
//! `cargo xtask lint`.
//!
//! The workspace's guarantees (byte-identical plans across worker
//! counts, deterministic DES traces, chaos-proof serving) rest on
//! determinism properties that tests can only sample. This crate makes
//! the *sources* of non-determinism and panic-cascade hazards
//! unrepresentable in library code, by scanning every `src/` tree with
//! a [minimal Rust lexer](lexer) so rules match real code — never
//! string literals or comments — and escape markers only count when
//! they trail the code they excuse.
//!
//! Three passes run over the same engine (see [`rules::RuleId`]):
//!
//! * **core** — the original seven audit rules (casts, panicking
//!   extractors, raw quantity fields, context bypass, raw DES time,
//!   prints, naked locks);
//! * **determinism** — unordered collections in plan-affecting crates,
//!   wall-clock acquisition outside `bc_obs::wall`, ad-hoc
//!   `thread::spawn` outside `bc_core::par`;
//! * **concurrency** — raw lock acquisition in `bc-serve` outside
//!   `bc_serve::sync`, and `static mut` anywhere.
//!
//! A fourth, reflexive rule — `stale-escape` — reports any escape
//! marker that no longer suppresses a finding, so the escape inventory
//! can only shrink. [`workspace::run_workspace`] drives the passes over
//! the whole tree and returns a [`Report`] whose JSON rendering is
//! byte-stable; [`corpus`] carries the seeded self-test corpus (one
//! positive, one negative, one escape case per rule) that the root test
//! suite runs in tier 1.
//!
//! The crate is dependency-free: it sits below `bc-obs` in the build
//! graph, and the xtask driver cross-validates its JSON output with
//! `bc_obs::json`.

pub mod corpus;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod workspace;

pub use report::{Report, SCHEMA};
pub use rules::{scan_file, Diagnostic, RuleId};
pub use workspace::run_workspace;

#[cfg(test)]
mod tests {
    use crate::lexer::{tokenize, SourceFile, TokKind};
    use crate::report::Report;
    use crate::rules::{Diagnostic, RuleId};

    #[test]
    fn lexer_classifies_comments_strings_chars() {
        let src = "let a = 'x'; // trail\nlet b: &'a str = \"s\"; /* block */\n";
        let kinds: Vec<TokKind> = tokenize(src).iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Char));
        assert!(kinds.contains(&TokKind::Lifetime));
        assert!(kinds.contains(&TokKind::LineComment));
        assert!(kinds.contains(&TokKind::BlockComment));
        assert!(kinds.contains(&TokKind::Str));
    }

    #[test]
    fn lexer_handles_nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ c */ fn f() { r#\"x \" y\"# }\n";
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(&src[toks[0].start..toks[0].end], "/* a /* b */ c */");
        let raw = toks
            .iter()
            .find(|t| t.kind == TokKind::RawStr)
            .map(|t| &src[t.start..t.end]);
        assert_eq!(raw, Some("r#\"x \" y\"#"));
    }

    #[test]
    fn sanitized_lines_blank_literals_preserving_columns() {
        let src = "call(\".unwrap()\"); // as f64\n";
        let sf = SourceFile::parse(src);
        assert_eq!(sf.code[0].len(), src.len() - 1);
        assert!(!sf.code[0].contains(".unwrap()"));
        assert!(!sf.code[0].contains("as f64"));
        assert!(sf.code[0].starts_with("call("));
    }

    #[test]
    fn markers_attach_to_trailing_comments_only() {
        let src = "// cast-ok: leading\nlet x = 1; // cast-ok: trailing\n\"cast-ok: literal\";\n";
        let sf = SourceFile::parse(src);
        assert!(sf.markers_on(1).is_empty());
        assert_eq!(sf.markers_on(2), ["cast-ok:"]);
        assert!(sf.markers_on(3).is_empty());
    }

    #[test]
    fn test_mask_covers_module_and_resumes_after() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn b() {}\n";
        let sf = SourceFile::parse(src);
        assert_eq!(sf.test_mask, [false, true, true, true, true, false]);
    }

    #[test]
    fn report_json_is_byte_stable_and_sorted() {
        let d = |file: &str, line: usize| Diagnostic {
            file: file.to_string(),
            line,
            col: 1,
            rule: RuleId::PrintBan,
            excerpt: "println!(\"x\")".to_string(),
        };
        let a = Report::new(2, vec![d("b.rs", 3), d("a.rs", 9)]);
        let b = Report::new(2, vec![d("a.rs", 9), d("b.rs", 3)]);
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.diagnostics[0].file, "a.rs");
        let json = a.render_json();
        assert!(json.contains("\"schema\": \"bc-lint-report/v1\""));
        assert!(json.contains("\"total_violations\": 2"));
    }

    #[test]
    fn rule_catalog_names_are_unique_and_escapes_recognized() {
        let mut names: Vec<&str> = RuleId::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RuleId::ALL.len());
        for rule in RuleId::ALL {
            if let Some(marker) = rule.escape() {
                assert!(
                    crate::lexer::MARKERS.contains(&marker),
                    "{marker} missing from lexer::MARKERS"
                );
            }
        }
    }
}

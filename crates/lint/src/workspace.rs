//! Workspace walking and the whole-tree entry point.
//!
//! Scope: the `src/` trees of the root facade and every `crates/*`
//! member — *including* `crates/xtask` and `crates/lint` themselves,
//! which the old substring scanner had to exempt because their sources
//! quote the banned patterns. Token-aware sanitization blanks those
//! quotes, so the lint stack now lints itself. `vendor/` stubs,
//! `tests/`, `examples/` and `benches/` stay exempt (test and demo code
//! may panic freely; clippy.toml grants unit tests the same exemption).

use crate::manifest;
use crate::report::Report;
use crate::rules::scan_file;
use std::fs;
use std::path::{Path, PathBuf};

/// The crate directories whose `src/` trees are linted: the root facade
/// plus every `crates/*` member.
pub fn crate_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.to_path_buf()];
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return dirs;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            dirs.push(path);
        }
    }
    dirs.sort();
    dirs
}

/// All `.rs` files under the linted crates' `src/` trees, sorted.
pub fn library_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in crate_dirs(root) {
        collect_rs(&dir.join("src"), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs every pass against the workspace rooted at `root`.
///
/// # Errors
///
/// The path of the first unreadable source file.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let files = library_sources(root);
    let mut diagnostics = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file)
            .map_err(|e| format!("unreadable source file {}: {e}", file.display()))?;
        let label = file
            .strip_prefix(root)
            .unwrap_or(file)
            .display()
            .to_string();
        diagnostics.extend(scan_file(&label, &text));
    }
    diagnostics.extend(manifest::check_lint_table(root));
    diagnostics.extend(manifest::check_crate_lint_optin(root, &crate_dirs(root)));
    diagnostics.extend(manifest::check_registration_completeness(root, &crate_dirs(root)));
    Ok(Report::new(files.len(), diagnostics))
}

//! A minimal Rust lexer: just enough of the language to know, for every
//! byte of a source file, whether it is *code*, a *comment*, or the
//! interior of a *literal*.
//!
//! The rule engine does not need types, macros, or expressions — its
//! patterns are textual. What broke the old substring scanner was not
//! missing syntax trees but missing *token classes*: `.unwrap()` inside
//! a doc string is not a call, `cast-ok:` inside a string literal is not
//! a marker, and `#[cfg(test)]` halfway down a file does not exempt the
//! library code that follows the test module. The lexer recovers exactly
//! those distinctions:
//!
//! * line comments, block comments (including nesting),
//! * string literals (escapes honoured), raw strings (`r"…"`,
//!   `r#"…"#` with any hash count, `b"…"`/`br#"…"#` byte forms),
//! * char literals vs lifetimes (`'a'` vs `'a`),
//! * identifier / number / punctuation tokens with line spans.
//!
//! [`SourceFile::parse`] folds the token stream into three per-line
//! views the rules consume:
//!
//! 1. **sanitized code lines** — the original text with every comment
//!    and literal byte blanked to a space (newlines kept), so substring
//!    patterns only ever match real code and byte columns still line up
//!    with the original file;
//! 2. **a test mask** — lines inside a `#[cfg(test)]`-gated item, found
//!    by brace matching rather than "everything after the first marker",
//!    so library code after an inline test module is scanned again;
//! 3. **escape markers** — `cast-ok:`-style markers collected from
//!    *trailing* comments only (a comment on a line that already holds
//!    code), never from literals or leading comments.

/// What a token is. The scanner only distinguishes the classes the rule
/// engine cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (including prefixed/suffixed forms).
    Number,
    /// A single punctuation byte.
    Punct,
    /// `// …` to end of line (including `///` and `//!` docs).
    LineComment,
    /// `/* … */`, nesting honoured.
    BlockComment,
    /// `"…"` or `b"…"` with escape processing.
    Str,
    /// `r"…"` / `r#"…"#` / `br#"…"#`, any hash count.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'ident` (no closing quote).
    Lifetime,
}

impl TokKind {
    /// Comment tokens carry escape markers; everything else is code or
    /// literal.
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Bytes of these tokens are blanked out of the sanitized view.
    fn is_blanked(self) -> bool {
        matches!(
            self,
            TokKind::LineComment | TokKind::BlockComment | TokKind::Str | TokKind::RawStr | TokKind::Char
        )
    }
}

/// One token: kind plus byte span and the 1-based line it starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
}

impl Tok {
    /// 1-based line the token ends on (strings and block comments may
    /// span several lines).
    pub fn end_line(&self, text: &str) -> usize {
        self.line + text[self.start..self.end].bytes().filter(|&b| b == b'\n').count()
    }
}

/// Tokenizes `text`. Unterminated literals or comments are tolerated
/// (the token runs to end of input): the engine lints code that is
/// expected to compile, but must never panic on code that does not.
pub fn tokenize(text: &str) -> Vec<Tok> {
    Lexer { text, bytes: text.as_bytes(), pos: 0, line: 1 }.run()
}

struct Lexer<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            let kind = match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment();
                    TokKind::LineComment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment();
                    TokKind::BlockComment
                }
                b'"' => {
                    self.take_string();
                    TokKind::Str
                }
                b'\'' => self.take_char_or_lifetime(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.take_ident_or_literal_prefix(),
                b'0'..=b'9' => {
                    self.take_number();
                    TokKind::Number
                }
                _ => {
                    self.pos += 1;
                    TokKind::Punct
                }
            };
            out.push(Tok { kind, start, end: self.pos, line });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn take_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn take_block_comment(&mut self) {
        self.pos += 2; // `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
    }

    /// A `"…"` string with `\` escapes; the cursor sits on the opening
    /// quote.
    fn take_string(&mut self) {
        self.pos += 1; // opening `"`
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                _ => self.bump(),
            }
        }
    }

    /// A raw string whose terminator is `"` followed by `hashes` `#`s;
    /// the cursor sits on the opening quote.
    fn take_raw_string(&mut self, hashes: usize) {
        self.pos += 1; // opening `"`
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' && self.hashes_follow(hashes) {
                self.pos += 1 + hashes;
                return;
            }
            self.bump();
        }
    }

    fn hashes_follow(&self, n: usize) -> bool {
        (1..=n).all(|k| self.peek(k) == Some(b'#'))
    }

    /// Distinguishes `'a'` (char) from `'a` (lifetime) from a bare `'`.
    fn take_char_or_lifetime(&mut self) -> TokKind {
        let mut chars = self.text[self.pos + 1..].chars();
        match chars.next() {
            Some('\\') => {
                // Escaped char literal: consume until the closing quote.
                self.pos += 1;
                while self.pos < self.bytes.len() {
                    match self.bytes[self.pos] {
                        b'\'' => {
                            self.pos += 1;
                            return TokKind::Char;
                        }
                        b'\\' => {
                            self.pos += 1;
                            if self.pos < self.bytes.len() {
                                self.bump();
                            }
                        }
                        _ => self.bump(),
                    }
                }
                TokKind::Char
            }
            Some(c) if chars.next() == Some('\'') => {
                // `'x'` — a one-char literal (any scalar, not just ASCII).
                self.pos += 1 + c.len_utf8() + 1;
                TokKind::Char
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // `'ident` with no closing quote: a lifetime.
                self.pos += 1;
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos] == b'_' || self.bytes[self.pos].is_ascii_alphanumeric())
                {
                    self.pos += 1;
                }
                TokKind::Lifetime
            }
            _ => {
                self.pos += 1;
                TokKind::Punct
            }
        }
    }

    /// An identifier — or, when the identifier is `r`/`b`/`br` glued to
    /// a quote (or `#…"` for the raw forms), a string-literal prefix.
    fn take_ident_or_literal_prefix(&mut self) -> TokKind {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos] == b'_' || self.bytes[self.pos].is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let ident = &self.text[start..self.pos];
        let raw = matches!(ident, "r" | "br");
        let stringish = raw || ident == "b";
        if stringish && self.peek(0) == Some(b'"') {
            if raw {
                self.take_raw_string(0);
                return TokKind::RawStr;
            }
            self.take_string();
            return TokKind::Str;
        }
        if raw && self.peek(0) == Some(b'#') {
            let mut hashes = 0usize;
            while self.peek(hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some(b'"') {
                self.pos += hashes;
                self.take_raw_string(hashes);
                return TokKind::RawStr;
            }
        }
        if ident == "b" && self.peek(0) == Some(b'\'') {
            // `b'x'` byte literal: delegate to the char scanner.
            return self.take_char_or_lifetime();
        }
        TokKind::Ident
    }

    /// A numeric literal: digits plus alphanumeric continuation
    /// (`0x1f`, `1_000u64`, `2e-3`), taking a `.` only when a digit
    /// follows so `1.0.exp2()` splits as `1.0` `.` `exp2`.
    fn take_number(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'_'
                || b.is_ascii_alphanumeric()
                || (b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
            {
                self.pos += 1;
            } else if (b == b'+' || b == b'-')
                && matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                self.pos += 1; // exponent sign in `2e-3`
            } else {
                break;
            }
        }
    }
}

/// The escape markers the rule catalog recognizes (see
/// `rules::RuleId::escape`). `stale-ok:` is the meta-marker: it keeps an
/// intentionally dormant marker from being reported as stale.
pub const MARKERS: [&str; 10] = [
    "cast-ok:",
    "panic-ok:",
    "unit-ok:",
    "context-ok:",
    "time-ok:",
    "print-ok:",
    "lock-ok:",
    "det-ok:",
    "conc-ok:",
    "stale-ok:",
];

/// A lexed source file folded into the per-line views the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Sanitized lines: comments and literal bytes blanked to spaces,
    /// byte columns preserved. Index 0 is line 1.
    pub code: Vec<String>,
    /// Original lines (for excerpts). Same indexing.
    pub raw: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]`-gated item.
    pub test_mask: Vec<bool>,
    /// Escape markers found in trailing comments, per line.
    markers: Vec<Vec<&'static str>>,
}

impl SourceFile {
    /// Lexes `text` and builds the sanitized/code views.
    pub fn parse(text: &str) -> SourceFile {
        let tokens = tokenize(text);

        let mut bytes = text.as_bytes().to_vec();
        for tok in &tokens {
            if tok.kind.is_blanked() {
                for b in &mut bytes[tok.start..tok.end] {
                    if *b != b'\n' && *b != b'\r' {
                        *b = b' ';
                    }
                }
            }
        }
        // Only whole tokens were overwritten, each with ASCII spaces, so
        // the buffer is still valid UTF-8.
        let sanitized = String::from_utf8_lossy(&bytes).into_owned();
        let code: Vec<String> = sanitized.lines().map(str::to_string).collect();
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let n_lines = raw.len();

        let mut markers: Vec<Vec<&'static str>> = vec![Vec::new(); n_lines];
        let mut last_code_end_line = 0usize;
        for tok in &tokens {
            if tok.kind.is_comment() {
                // Trailing means: some code token already ended on the
                // line this comment starts on.
                if tok.line == last_code_end_line && tok.line <= n_lines {
                    let body = &text[tok.start..tok.end];
                    for marker in MARKERS {
                        if body.contains(marker) && !markers[tok.line - 1].contains(&marker) {
                            markers[tok.line - 1].push(marker);
                        }
                    }
                }
            } else {
                last_code_end_line = tok.end_line(text);
            }
        }

        let test_mask = test_mask(&tokens, text, n_lines);
        SourceFile { code, raw, test_mask, markers }
    }

    /// The escape markers attached (via trailing comment) to `line`
    /// (1-based).
    pub fn markers_on(&self, line: usize) -> &[&'static str] {
        self.markers.get(line - 1).map_or(&[], Vec::as_slice)
    }
}

/// Marks every line covered by a `#[cfg(test)]`-gated item: the
/// attribute line, any stacked attributes, and the item body through its
/// matching close brace (or terminating `;`).
fn test_mask(tokens: &[Tok], text: &str, n_lines: usize) -> Vec<bool> {
    let code: Vec<&Tok> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let bytes = text.as_bytes();
    let is_punct = |tok: &Tok, byte: u8| {
        tok.kind == TokKind::Punct && tok.end - tok.start == 1 && bytes[tok.start] == byte
    };
    let is_attr_start = |i: usize| {
        code.len() > i + 1 && is_punct(code[i], b'#') && is_punct(code[i + 1], b'[')
    };
    // Index of the `]` matching the `[` at `open`, bracket depth honoured.
    let matching_bracket = |open: usize| -> Option<usize> {
        let mut depth = 0usize;
        for (k, tok) in code.iter().enumerate().skip(open) {
            if is_punct(tok, b'[') {
                depth += 1;
            } else if is_punct(tok, b']') {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        None
    };
    // Whether the attribute tokens in `(from..to)` spell exactly `cfg(test)`.
    let is_cfg_test = |from: usize, to: usize| {
        let inner: Vec<&str> = code[from..to].iter().map(|t| &text[t.start..t.end]).collect();
        inner == ["cfg", "(", "test", ")"]
    };

    let mut mask = vec![false; n_lines];
    let mut i = 0usize;
    while i < code.len() {
        if !is_attr_start(i) {
            i += 1;
            continue;
        }
        let Some(close) = matching_bracket(i + 1) else {
            break; // unterminated attribute: nothing more to scope
        };
        if !is_cfg_test(i + 2, close) {
            i = close + 1;
            continue;
        }
        let attr_line = code[i].line;
        // Skip any further stacked attributes before the item itself.
        let mut j = close + 1;
        while is_attr_start(j) {
            match matching_bracket(j + 1) {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // The item body: first `{` opens it (brace-matched), or a `;`
        // ends a body-less item (`mod tests;`).
        let mut end_line = attr_line;
        while let Some(tok) = code.get(j) {
            end_line = tok.end_line(text);
            if is_punct(tok, b';') {
                break;
            }
            if is_punct(tok, b'{') {
                let mut depth = 1usize;
                j += 1;
                while let Some(body) = code.get(j) {
                    end_line = body.end_line(text);
                    if is_punct(body, b'{') {
                        depth += 1;
                    } else if is_punct(body, b'}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        for line in attr_line..=end_line.min(n_lines) {
            mask[line - 1] = true;
        }
        i = j + 1;
    }
    mask
}

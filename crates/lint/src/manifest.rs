//! Manifest-level checks: the workspace clippy lint table and per-crate
//! opt-in. These are file-level findings (line 0), not token scans.

use crate::rules::{Diagnostic, RuleId};
use std::fs;
use std::path::Path;

/// The four clippy lints the workspace must keep denying.
pub const REQUIRED_DENIES: [&str; 4] = [
    "unwrap_used",
    "expect_used",
    "cast_possible_truncation",
    "cast_sign_loss",
];

/// Every `crates/*` member registered with the lint engine. The
/// determinism passes scope rules by crate name, so a crate added to
/// the workspace but missing here would silently escape them;
/// [`check_registration_completeness`] turns that silence into a
/// `lint-table-drift` finding instead.
pub const REGISTERED_CRATES: [&str; 17] = [
    "bench", "benchcheck", "campaign", "core", "des", "geom", "lint", "obs",
    "serve", "setcover", "sim", "testbed", "tsp", "units", "wpt", "wsn", "xtask",
];

/// Checks every scanned `crates/*` directory is registered in
/// [`REGISTERED_CRATES`]. `crate_dirs` is the scan set from
/// [`crate::workspace::crate_dirs`]; the root facade entry (not under
/// `crates/`) is skipped.
pub fn check_registration_completeness(
    root: &Path,
    crate_dirs: &[std::path::PathBuf],
) -> Vec<Diagnostic> {
    let crates_root = root.join("crates");
    let mut out = Vec::new();
    for dir in crate_dirs {
        if !dir.starts_with(&crates_root) {
            continue;
        }
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if !REGISTERED_CRATES.contains(&name.as_str()) {
            out.push(drift(
                format!("crates/{name}/Cargo.toml"),
                format!(
                    "workspace crate `{name}` is not registered in the bc-lint \
                     manifest (manifest::REGISTERED_CRATES)"
                ),
            ));
        }
    }
    out
}

/// Checks the root manifest still denies the required clippy lints.
pub fn check_lint_table(root: &Path) -> Vec<Diagnostic> {
    let manifest = root.join("Cargo.toml");
    let Ok(text) = fs::read_to_string(&manifest) else {
        return vec![drift(
            manifest.display().to_string(),
            "root Cargo.toml unreadable".to_string(),
        )];
    };
    lint_table_violations("Cargo.toml", &text)
}

/// Pure core of [`check_lint_table`] for the corpus tests.
pub fn lint_table_violations(label: &str, manifest: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_table = false;
    let mut denied: Vec<&str> = Vec::new();
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_table = t == "[workspace.lints.clippy]";
            continue;
        }
        if in_table {
            if let Some((key, value)) = t.split_once('=') {
                if value.contains("deny") {
                    denied.push(key.trim());
                }
            }
        }
    }
    for lint in REQUIRED_DENIES {
        if !denied.contains(&lint) {
            out.push(drift(
                label.to_string(),
                format!("[workspace.lints.clippy] must deny `{lint}`"),
            ));
        }
    }
    out
}

/// Checks every scanned crate manifest opts into the workspace lints.
pub fn check_crate_lint_optin(root: &Path, crate_dirs: &[std::path::PathBuf]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for dir in crate_dirs {
        let manifest = dir.join("Cargo.toml");
        let label = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .display()
            .to_string();
        let ok = fs::read_to_string(&manifest)
            .is_ok_and(|text| manifest_opts_into_lints(&text));
        if !ok {
            out.push(drift(
                label,
                "crate must set `[lints] workspace = true`".to_string(),
            ));
        }
    }
    out
}

/// True when a crate manifest contains `[lints] workspace = true`.
pub fn manifest_opts_into_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_lints = t == "[lints]";
            continue;
        }
        if in_lints {
            if let Some((key, value)) = t.split_once('=') {
                if key.trim() == "workspace" && value.trim() == "true" {
                    return true;
                }
            }
        }
    }
    false
}

fn drift(file: String, excerpt: String) -> Diagnostic {
    Diagnostic { file, line: 0, col: 0, rule: RuleId::LintTableDrift, excerpt }
}

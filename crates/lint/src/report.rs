//! Report assembly and rendering.
//!
//! The JSON form is hand-rendered with a fixed field order and
//! pre-sorted findings, so two runs over the same tree produce
//! byte-identical documents — the same determinism discipline the
//! engine enforces on the code it scans. `bc-lint` stays dependency-free
//! (it is below `bc-obs` in the build graph), so it carries its own
//! string escaper; the xtask driver re-validates the rendered document
//! with `bc_obs::json`, which keeps the two implementations honest
//! against each other.

use crate::rules::{Diagnostic, RuleId};
use std::fmt::Write as _;

/// Identifies the report layout for downstream consumers.
pub const SCHEMA: &str = "bc-lint-report/v1";

/// The outcome of a workspace run: what was scanned and what fired.
#[derive(Debug)]
pub struct Report {
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Builds a report, sorting the findings into canonical order.
    pub fn new(files_scanned: usize, mut diagnostics: Vec<Diagnostic>) -> Report {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        Report { files_scanned, diagnostics }
    }

    /// True when nothing fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Compiler-style text rendering: one line per finding plus a
    /// summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        if self.is_clean() {
            let _ = writeln!(out, "bc-lint: clean ({} files scanned)", self.files_scanned);
        } else {
            let _ = writeln!(
                out,
                "bc-lint: {} violation(s) across {} files scanned",
                self.diagnostics.len(),
                self.files_scanned
            );
        }
        out
    }

    /// Stable pretty-printed JSON document. Field order is fixed,
    /// findings are pre-sorted, and per-rule counts iterate the static
    /// catalog, so the bytes are a pure function of the findings.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        field_str(&mut out, 1, "tool", "bc-lint");
        out.push_str(",\n");
        field_str(&mut out, 1, "schema", SCHEMA);
        out.push_str(",\n");
        field_usize(&mut out, 1, "files_scanned", self.files_scanned);
        out.push_str(",\n");
        field_usize(&mut out, 1, "total_violations", self.diagnostics.len());
        out.push_str(",\n");

        out.push_str("  \"rules\": [\n");
        for (i, rule) in RuleId::ALL.iter().enumerate() {
            out.push_str("    {");
            key_str(&mut out, "name", rule.name());
            out.push_str(", ");
            key_str(&mut out, "pass", rule.pass());
            out.push_str(", ");
            match rule.escape() {
                Some(m) => key_str(&mut out, "escape", m),
                None => out.push_str("\"escape\": null"),
            }
            out.push_str(", ");
            key_str(&mut out, "scope", rule.scope_doc());
            out.push_str(", ");
            out.push_str("\"count\": ");
            let n = self.diagnostics.iter().filter(|d| d.rule == *rule).count();
            let _ = write!(out, "{n}");
            out.push('}');
            out.push_str(if i + 1 < RuleId::ALL.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");

        out.push_str("  \"violations\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str("    {");
            key_str(&mut out, "file", &d.file);
            out.push_str(", ");
            let _ = write!(out, "\"line\": {}, \"col\": {}, ", d.line, d.col);
            key_str(&mut out, "rule", d.rule.name());
            out.push_str(", ");
            key_str(&mut out, "excerpt", d.excerpt.trim());
            out.push_str(", ");
            key_str(&mut out, "hint", d.rule.hint());
            out.push('}');
            out.push_str(if i + 1 < self.diagnostics.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Appends `"key": "value"` (both escaped) to `out`.
fn key_str(out: &mut String, key: &str, value: &str) {
    escape_into(out, key);
    out.push_str(": ");
    escape_into(out, value);
}

fn field_str(out: &mut String, indent: usize, key: &str, value: &str) {
    out.push_str(&"  ".repeat(indent));
    key_str(out, key, value);
}

fn field_usize(out: &mut String, indent: usize, key: &str, value: usize) {
    out.push_str(&"  ".repeat(indent));
    escape_into(out, key);
    let _ = write!(out, ": {value}");
}

/// Appends `s` as a JSON string literal (quotes included). Mirrors the
/// escaping rules of `bc_obs::json::escape_into`; the xtask driver
/// cross-validates rendered reports against that crate's parser.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => { // cast-ok: char to code point, lossless
                let _ = write!(out, "\\u{:04x}", c as u32); // cast-ok: char to code point
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

//! Thin driver for the `bc-lint` workspace scan, invoked as
//! `cargo xtask lint`.
//!
//! All analysis lives in `bc-lint` (the lexer, the rule catalog, the
//! three audit passes, the report renderers and the self-test corpus);
//! this binary only resolves the workspace root, runs
//! [`bc_lint::run_workspace`], and decides where the output goes:
//!
//! * `cargo xtask lint` — compiler-style text to stdout/stderr, exit
//!   code 1 when anything fired;
//! * `cargo xtask lint --json [--out PATH]` — renders the byte-stable
//!   JSON report, cross-validates it with `bc_obs::json` (an
//!   independent parser: the renderer lives in dependency-free
//!   `bc-lint`, so a disagreement means one of them is wrong), writes
//!   it to `PATH` (default `lint_report.json` at the workspace root),
//!   and echoes it to stdout for CI capture.
//!
//! `cargo xtask bench-check [--baseline-dir DIR] [--fresh-dir DIR]
//! [--timing-factor F]` runs the bench-regression observatory: every
//! `BENCH_*.json` in the baseline dir (default `baselines/` at the
//! workspace root) is diffed against its counterpart in the fresh dir
//! (default the current directory) via `bc_benchcheck`, the trend
//! tables are printed, and the process exits 1 when any metric
//! regressed or a baseline has no fresh counterpart.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench-check") => bench_check(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask lint [--json] [--out PATH]\n       \
                 cargo xtask bench-check [--baseline-dir DIR] [--fresh-dir DIR] [--timing-factor F]"
            );
            ExitCode::FAILURE
        }
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut out_path: Option<PathBuf> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let report = match bc_lint::run_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        let rendered = report.render_json();
        // Independent re-parse: bc-lint hand-renders its JSON without a
        // dependency, so run the document through bc-obs's validator
        // before anything downstream consumes it.
        if let Err(e) = bc_obs::json::validate_line(&rendered) {
            eprintln!("xtask: rendered report failed JSON validation: {e}");
            return ExitCode::FAILURE;
        }
        let path = out_path.unwrap_or_else(|| root.join("lint_report.json"));
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("xtask: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        print!("{rendered}");
        eprintln!("xtask: wrote {}", path.display());
    } else {
        print!("{}", report.render_text());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn bench_check(flags: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut baseline_dir = root.join("baselines");
    let mut fresh_dir = PathBuf::from(".");
    let mut tol = bc_benchcheck::Tolerance::default();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline-dir" => match it.next() {
                Some(p) => baseline_dir = PathBuf::from(p),
                None => return flag_needs_value("--baseline-dir"),
            },
            "--fresh-dir" => match it.next() {
                Some(p) => fresh_dir = PathBuf::from(p),
                None => return flag_needs_value("--fresh-dir"),
            },
            "--timing-factor" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 1.0 => tol.timing_factor = f,
                _ => {
                    eprintln!("xtask: --timing-factor needs a number > 1");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    // Every baseline must have a fresh counterpart: a bench that stops
    // being produced is itself a regression in coverage.
    let mut names: Vec<String> = match std::fs::read_dir(&baseline_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("xtask: read baseline dir {}: {e}", baseline_dir.display());
            return ExitCode::FAILURE;
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("xtask: no BENCH_*.json baselines in {}", baseline_dir.display());
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for name in &names {
        let bench = bc_benchcheck::bench_kind(name).to_string();
        let baseline_text = match std::fs::read_to_string(baseline_dir.join(name)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: read baseline {name}: {e}");
                failed = true;
                continue;
            }
        };
        let fresh_text = match std::fs::read_to_string(fresh_dir.join(name)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: fresh {name} missing ({e}) — bench no longer produced?");
                failed = true;
                continue;
            }
        };
        match bc_benchcheck::compare_documents(&bench, &baseline_text, &fresh_text, &tol) {
            Ok(cmp) => {
                print!("{}", cmp.render_table());
                if !cmp.is_ok() {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("xtask: {name}: {e}");
                failed = true;
            }
        }
    }

    if failed {
        eprintln!("xtask: bench-check FAILED");
        ExitCode::FAILURE
    } else {
        println!("bench-check: all {} benches within tolerance", names.len());
        ExitCode::SUCCESS
    }
}

fn flag_needs_value(flag: &str) -> ExitCode {
    eprintln!("xtask: {flag} needs a value");
    ExitCode::FAILURE
}

/// Workspace root: the parent of this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

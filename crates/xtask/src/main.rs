//! Offline workspace lint driver, invoked as `cargo xtask lint`.
//!
//! Complements `cargo clippy` (which enforces the `[workspace.lints]`
//! table at compile time) with source-level checks that clippy cannot
//! express:
//!
//! 1. **Unannotated numeric casts** — ` as f64` / ` as usize` / ` as
//!    u64` / ` as u32` / ` as i64` / ` as i32` in library code must carry
//!    an inline `// cast-ok: <reason>` audit marker. The marker is the
//!    repo's allowlist: every cast of a physical quantity is expected to
//!    go through the `bc-units` newtypes instead, so a raw cast is only
//!    acceptable for counts, indices and bit manipulation — and must say
//!    so.
//! 2. **Panicking extractors** — `.unwrap()` / `.expect(` outside
//!    `#[cfg(test)]` code. The error layer of PR 1 exists precisely so
//!    library code never panics on fallible paths.
//! 3. **Raw `f64` quantity fields** — `pub <name>_{j,s,m,m2,w,mps,jpm}:
//!    f64` struct fields in `crates/wpt` and `crates/core`, which must be
//!    `bc-units` newtypes (`Joules`, `Seconds`, `Meters`, ...).
//! 4. **Lint-table drift** — the root `Cargo.toml` must keep denying
//!    `unwrap_used`, `expect_used`, `cast_possible_truncation` and
//!    `cast_sign_loss`, and every library crate must opt in with
//!    `[lints] workspace = true`.
//! 5. **Context bypass** — `CandidateFamily::pair_intersection*` /
//!    `DistanceMatrix::from_points(` outside `bc-core::context` and the
//!    crates that define them. Planner-layer code must obtain those
//!    artifacts from a shared `PlanContext` so a figure sweep builds
//!    them once; a deliberate direct build carries `// context-ok:
//!    <reason>`.
//! 6. **Raw time arithmetic in bc-des** — `Seconds(`, `_s.0` and
//!    `as_secs_f64` inside `crates/des/src` outside the `clock` module.
//!    The engine's determinism argument rests on every timestamp flowing
//!    through `des::clock` (`Time`, `seconds()`/`minutes()`/`hours()`);
//!    a deliberate exception carries `// time-ok: <reason>`.
//! 7. **Print diagnostics in library code** — `println!` / `eprintln!`
//!    outside binary targets (`src/bin/`, `src/main.rs`). Diagnostics
//!    route through `bc-obs` events so sinks decide what is shown; a
//!    deliberate exception carries `// print-ok: <reason>`.
//! 8. **Naked lock acquisition** — `.lock().unwrap()` (and the
//!    `.expect(` / RwLock `.read()` / `.write()` variants) in library
//!    code. A panicking waiter turns one caught panic into a poisoned
//!    lock that wedges every later request; recovery must be explicit
//!    via `bc_serve::sync::{lock_recover, read_recover, write_recover}`
//!    or carry a `// lock-ok: <reason>` marker.
//!
//! Scope: `src/` trees of the root facade and every `crates/*` member
//! except this one. `vendor/` stubs, `tests/`, `examples/` and `benches/`
//! are exempt (test and demo code may panic freely; clippy.toml grants
//! the same exemption to unit tests). Within a file, everything after the
//! first `#[cfg(test)]` line is ignored — by repo convention test modules
//! sit at the bottom of the file — and comment-only lines are skipped.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

/// Runs every check against the workspace rooted at the manifest dir.
fn lint() -> ExitCode {
    let root = workspace_root();
    let mut violations = Vec::new();

    for file in library_sources(&root) {
        let Ok(text) = fs::read_to_string(&file) else {
            eprintln!("xtask: unreadable source file {}", file.display());
            return ExitCode::FAILURE;
        };
        let label = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .display()
            .to_string();
        violations.extend(scan_source(&label, &text));
    }

    violations.extend(check_lint_table(&root));
    violations.extend(check_crate_lint_optin(&root));

    if violations.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// One finding, printed in `file:line: [rule] message` compiler style.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: String,
    line: usize,
    rule: Rule,
    excerpt: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    UnannotatedCast,
    PanickingExtractor,
    RawQuantityField,
    LintTableDrift,
    ContextBypass,
    RawTime,
    PrintBan,
    NakedLock,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (name, hint) = match self.rule {
            Rule::UnannotatedCast => (
                "unannotated-cast",
                "add `// cast-ok: <reason>` or route through bc-units",
            ),
            Rule::PanickingExtractor => (
                "panicking-extractor",
                "return an error (see PlanError/ExecError) instead of panicking",
            ),
            Rule::RawQuantityField => (
                "raw-quantity-field",
                "use a bc-units newtype (Joules, Seconds, Meters, ...)",
            ),
            Rule::LintTableDrift => ("lint-table-drift", "restore the workspace lint config"),
            Rule::ContextBypass => (
                "context-bypass",
                "build this artifact through PlanContext, or add `// context-ok: <reason>`",
            ),
            Rule::RawTime => (
                "raw-time",
                "route timestamps through des::clock (Time, seconds()/minutes()/hours()), \
                 or add `// time-ok: <reason>`",
            ),
            Rule::PrintBan => (
                "print-ban",
                "emit a bc-obs event instead of printing from library code, \
                 or add `// print-ok: <reason>`",
            ),
            Rule::NakedLock => (
                "naked-lock",
                "recover from poisoning via bc_serve::sync::{lock,read,write}_recover, \
                 or add `// lock-ok: <reason>`",
            ),
        };
        write!(
            f,
            "{}:{}: [{name}] {} ({hint})",
            self.file,
            self.line,
            self.excerpt.trim()
        )
    }
}

/// The numeric casts that require an audit marker in library code.
const CAST_PATTERNS: [&str; 6] = [
    " as f64", " as usize", " as u64", " as u32", " as i64", " as i32",
];

/// Artifact constructions that must go through `bc_core::context` in
/// planner-layer code. The first pattern has no closing paren so the
/// `_par` variant matches too.
const CONTEXT_BYPASS_PATTERNS: [&str; 2] = [
    "CandidateFamily::pair_intersection",
    "DistanceMatrix::from_points(",
];

/// Files allowed to construct the shared artifacts directly: the
/// context module that owns the cache, and the crates defining the
/// constructors (their internals and unit tests are the implementation).
fn context_bypass_exempt(label: &str) -> bool {
    label.contains("crates/tsp/")
        || label.ends_with("crates/core/src/context.rs")
        || label.ends_with("crates/core/src/candidates.rs")
}

/// Raw time arithmetic that must stay inside `des::clock`: direct
/// `Seconds` construction, tuple-field access on a seconds quantity,
/// and `Duration`-style float extraction.
const RAW_TIME_PATTERNS: [&str; 3] = ["Seconds(", "_s.0", "as_secs_f64"];

/// Whether `label` falls under the raw-time rule: all of `bc-des`
/// except the clock module that owns the sanctioned conversions.
fn raw_time_scope(label: &str) -> bool {
    label.contains("crates/des/") && !label.ends_with("clock.rs")
}

/// Print diagnostics banned from library code (`eprintln!` contains
/// `println!`, so one pattern covers both; kept separate for clarity).
const PRINT_PATTERNS: [&str; 2] = ["println!", "eprintln!"];

/// Binary targets may print — that is their user interface. Everything
/// else routes diagnostics through `bc-obs`.
fn print_exempt(label: &str) -> bool {
    label.contains("/bin/") || label.ends_with("main.rs")
}

/// Lock acquisitions that panic on poison. A worker panic would then
/// cascade into every later waiter; library code recovers explicitly
/// through `bc_serve::sync` instead.
const NAKED_LOCK_PATTERNS: [&str; 6] = [
    ".lock().unwrap()",
    ".lock().expect(",
    ".read().unwrap()",
    ".read().expect(",
    ".write().unwrap()",
    ".write().expect(",
];

/// Suffixes that mark a field as a physical quantity (matching the
/// `bc-units` catalog: Joules, Seconds, Meters, Meters2, Watts,
/// MetersPerSecond, JoulesPerMeter).
const QUANTITY_SUFFIXES: [&str; 7] = ["_j", "_s", "_m", "_m2", "_w", "_mps", "_jpm"];

/// Scans one library source file; `label` is the path reported in
/// findings. Pure so the self-tests can feed seeded sources.
fn scan_source(label: &str, text: &str) -> Vec<Violation> {
    let quantity_crate = label.contains("crates/wpt/") || label.contains("crates/core/");
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        // Test modules sit at the bottom of each file by convention;
        // everything after the marker is exempt (clippy.toml grants the
        // same exemption via allow-unwrap-in-tests).
        if line.contains("#[cfg(test)]") {
            break;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue; // comment-only lines, including /// and //! docs
        }
        let lineno = idx + 1;

        if !line.contains("cast-ok:")
            && CAST_PATTERNS.iter().any(|p| line.contains(p))
        {
            out.push(Violation {
                file: label.to_string(),
                line: lineno,
                rule: Rule::UnannotatedCast,
                excerpt: line.to_string(),
            });
        }

        // The naked-lock rule takes precedence over the generic
        // panicking-extractor rule on lock lines: the fix is different
        // (poison recovery, not error returns), so the hint must be too.
        if NAKED_LOCK_PATTERNS.iter().any(|p| line.contains(p)) {
            if !line.contains("lock-ok:") {
                out.push(Violation {
                    file: label.to_string(),
                    line: lineno,
                    rule: Rule::NakedLock,
                    excerpt: line.to_string(),
                });
            }
        } else if line.contains(".unwrap()") || line.contains(".expect(") {
            out.push(Violation {
                file: label.to_string(),
                line: lineno,
                rule: Rule::PanickingExtractor,
                excerpt: line.to_string(),
            });
        }

        if !context_bypass_exempt(label)
            && !line.contains("context-ok:")
            && CONTEXT_BYPASS_PATTERNS.iter().any(|p| line.contains(p))
        {
            out.push(Violation {
                file: label.to_string(),
                line: lineno,
                rule: Rule::ContextBypass,
                excerpt: line.to_string(),
            });
        }

        if raw_time_scope(label)
            && !line.contains("time-ok:")
            && RAW_TIME_PATTERNS.iter().any(|p| line.contains(p))
        {
            out.push(Violation {
                file: label.to_string(),
                line: lineno,
                rule: Rule::RawTime,
                excerpt: line.to_string(),
            });
        }

        if !print_exempt(label)
            && !line.contains("print-ok:")
            && PRINT_PATTERNS.iter().any(|p| line.contains(p))
        {
            out.push(Violation {
                file: label.to_string(),
                line: lineno,
                rule: Rule::PrintBan,
                excerpt: line.to_string(),
            });
        }

        if quantity_crate {
            if let Some(field) = raw_quantity_field(trimmed) {
                out.push(Violation {
                    file: label.to_string(),
                    line: lineno,
                    rule: Rule::RawQuantityField,
                    excerpt: field.to_string(),
                });
            }
        }
    }
    out
}

/// Returns the declaration when `line` is a `pub <name>_<unit>: f64`
/// struct field whose name carries a quantity suffix.
fn raw_quantity_field(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("pub ")?;
    let colon = rest.find(':')?;
    let (name, ty) = rest.split_at(colon);
    let name = name.trim();
    let ty = ty[1..].trim().trim_end_matches(',');
    if ty != "f64" {
        return None;
    }
    // Field names are plain identifiers; anything else (fn signatures,
    // generics) has already failed the `find(':')` shape above or fails
    // the identifier check here.
    if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    QUANTITY_SUFFIXES
        .iter()
        .any(|s| name.ends_with(s))
        .then_some(line)
}

/// The four clippy lints the workspace must keep denying.
const REQUIRED_DENIES: [&str; 4] = [
    "unwrap_used",
    "expect_used",
    "cast_possible_truncation",
    "cast_sign_loss",
];

/// Checks the root manifest still denies the required clippy lints.
fn check_lint_table(root: &Path) -> Vec<Violation> {
    let manifest = root.join("Cargo.toml");
    let Ok(text) = fs::read_to_string(&manifest) else {
        return vec![Violation {
            file: manifest.display().to_string(),
            line: 0,
            rule: Rule::LintTableDrift,
            excerpt: "root Cargo.toml unreadable".to_string(),
        }];
    };
    lint_table_violations("Cargo.toml", &text)
}

/// Pure core of [`check_lint_table`] for the self-tests.
fn lint_table_violations(label: &str, manifest: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_table = false;
    let mut denied: Vec<&str> = Vec::new();
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_table = t == "[workspace.lints.clippy]";
            continue;
        }
        if in_table {
            if let Some((key, value)) = t.split_once('=') {
                if value.contains("deny") {
                    denied.push(key.trim());
                }
            }
        }
    }
    for lint in REQUIRED_DENIES {
        if !denied.contains(&lint) {
            out.push(Violation {
                file: label.to_string(),
                line: 0,
                rule: Rule::LintTableDrift,
                excerpt: format!("[workspace.lints.clippy] must deny `{lint}`"),
            });
        }
    }
    out
}

/// Checks every scanned crate manifest opts into the workspace lints.
fn check_crate_lint_optin(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for dir in crate_dirs(root) {
        let manifest = dir.join("Cargo.toml");
        let label = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .display()
            .to_string();
        let ok = fs::read_to_string(&manifest)
            .is_ok_and(|text| manifest_opts_into_lints(&text));
        if !ok {
            out.push(Violation {
                file: label,
                line: 0,
                rule: Rule::LintTableDrift,
                excerpt: "crate must set `[lints] workspace = true`".to_string(),
            });
        }
    }
    out
}

/// True when a crate manifest contains `[lints] workspace = true`.
fn manifest_opts_into_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_lints = t == "[lints]";
            continue;
        }
        if in_lints {
            if let Some((key, value)) = t.split_once('=') {
                if key.trim() == "workspace" && value.trim() == "true" {
                    return true;
                }
            }
        }
    }
    false
}

/// Workspace root: the parent of this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

/// The crate directories whose `src/` trees are linted: the root facade
/// plus every `crates/*` member except xtask itself (whose source quotes
/// the banned patterns). `vendor/` stubs are third-party API shims and
/// exempt.
fn crate_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.to_path_buf()];
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return dirs;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() && path.file_name().is_some_and(|n| n != "xtask") {
            dirs.push(path);
        }
    }
    dirs.sort();
    dirs
}

/// All `.rs` files under the linted crates' `src/` trees.
fn library_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in crate_dirs(root) {
        collect_rs(&dir.join("src"), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_cast_without_marker_is_flagged() {
        let src = "fn f(n: usize) -> f64 {\n    n as f64\n}\n";
        let v = scan_source("crates/sim/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnannotatedCast);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn cast_with_marker_passes() {
        let src = "fn f(n: usize) -> f64 {\n    n as f64 // cast-ok: count to float\n}\n";
        assert!(scan_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_and_expect_are_flagged_outside_tests() {
        let src = "fn f() {\n    let x = g().unwrap();\n    let y = h().expect(\"h\");\n}\n";
        let v = scan_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::PanickingExtractor));
    }

    #[test]
    fn unwrap_or_else_and_comments_pass() {
        let src = "//! docs mention .unwrap() freely\n\
                   /// and n as f64 too\n\
                   fn f() {\n\
                       let x = g().unwrap_or_else(|_| 0);\n\
                       let y = h().unwrap_or(1);\n\
                   }\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { h().unwrap(); }\n}\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_quantity_field_flagged_in_core_only() {
        let src = "pub struct S {\n    pub total_energy_j: f64,\n    pub count: usize,\n}\n";
        let v = scan_source("crates/core/src/plan.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RawQuantityField);
        // Outside wpt/core the typed-field rule does not apply.
        assert!(scan_source("crates/geom/src/x.rs", src).is_empty());
    }

    #[test]
    fn typed_quantity_field_passes() {
        let src = "pub struct S {\n    pub total_energy_j: Joules,\n    pub efficiency: f64,\n}\n";
        assert!(scan_source("crates/core/src/plan.rs", src).is_empty());
    }

    #[test]
    fn context_bypass_flagged_outside_context_module() {
        let src = "fn f(net: &Network) {\n    let fam = CandidateFamily::pair_intersection(net, 10.0);\n    let m = DistanceMatrix::from_points(net.positions());\n}\n";
        let v = scan_source("crates/core/src/planner/bc.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::ContextBypass));
        // The parallel variant is caught by the paren-less pattern.
        let par = "fn f() { CandidateFamily::pair_intersection_par(net, 1.0, 4); }\n";
        assert_eq!(scan_source("crates/sim/src/x.rs", par).len(), 1);
    }

    #[test]
    fn context_bypass_exemptions_pass() {
        let src = "fn f() { let m = DistanceMatrix::from_points(&pts); }\n";
        assert!(scan_source("crates/tsp/src/lib.rs", src).is_empty());
        assert!(scan_source("crates/core/src/context.rs", src).is_empty());
        assert!(scan_source("crates/core/src/candidates.rs", src).is_empty());
        let marked =
            "fn f() { let m = DistanceMatrix::from_points(&pts); // context-ok: no net here\n}\n";
        assert!(scan_source("crates/core/src/terrain.rs", marked).is_empty());
    }

    #[test]
    fn raw_time_flagged_in_des_outside_clock() {
        let src = "fn f() {\n    let t = Seconds(3.0);\n    let raw = horizon_s.0;\n    let d = dur.as_secs_f64();\n}\n";
        let v = scan_source("crates/des/src/engine.rs", src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == Rule::RawTime));
        // The clock module owns the sanctioned conversions.
        assert!(scan_source("crates/des/src/clock.rs", src).is_empty());
        // Other crates keep using Seconds directly.
        assert!(scan_source("crates/core/src/plan.rs", "let t = Seconds(3.0);\n").is_empty());
    }

    #[test]
    fn raw_time_marker_and_test_code_pass() {
        let marked = "fn f() { let t = Seconds(0.0); // time-ok: report boundary\n}\n";
        assert!(scan_source("crates/des/src/engine.rs", marked).is_empty());
        let test_only = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { t(Seconds(1.0)); }\n}\n";
        assert!(scan_source("crates/des/src/engine.rs", test_only).is_empty());
    }

    #[test]
    fn prints_flagged_in_library_code_only() {
        let src = "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n}\n";
        let v = scan_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::PrintBan));
        // Binary targets are the user interface and may print.
        assert!(scan_source("crates/sim/src/bin/repro.rs", src).is_empty());
        assert!(scan_source("crates/xtask/src/main.rs", src).is_empty());
        // Markers and test modules are exempt like every other rule.
        let marked = "fn f() { eprintln!(\"x\"); // print-ok: fatal-path diagnostics\n}\n";
        assert!(scan_source("crates/core/src/x.rs", marked).is_empty());
        let test_only = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"t\"); }\n}\n";
        assert!(scan_source("crates/core/src/x.rs", test_only).is_empty());
    }

    #[test]
    fn naked_locks_flagged_over_generic_extractor() {
        let src = "fn f() {\n    let a = m.lock().unwrap();\n    let b = rw.read().unwrap();\n    let c = rw.write().expect(\"w\");\n}\n";
        let v = scan_source("crates/serve/src/x.rs", src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == Rule::NakedLock));
        // Recovery helpers and non-lock unwraps are untouched by this rule.
        let recovered = "fn f() { let g = lock_recover(&m); }\n";
        assert!(scan_source("crates/serve/src/x.rs", recovered).is_empty());
        let plain = "fn f() { g().unwrap(); }\n";
        assert_eq!(
            scan_source("crates/serve/src/x.rs", plain)[0].rule,
            Rule::PanickingExtractor
        );
    }

    #[test]
    fn naked_lock_marker_and_test_code_pass() {
        let marked = "fn f() { let g = m.lock().unwrap(); // lock-ok: single-threaded setup\n}\n";
        assert!(scan_source("crates/serve/src/x.rs", marked).is_empty());
        let test_only =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { m.lock().unwrap(); }\n}\n";
        assert!(scan_source("crates/serve/src/x.rs", test_only).is_empty());
    }

    #[test]
    fn lint_table_drift_detected() {
        let good = "[workspace.lints.clippy]\n\
                    unwrap_used = \"deny\"\n\
                    expect_used = \"deny\"\n\
                    cast_possible_truncation = \"deny\"\n\
                    cast_sign_loss = \"deny\"\n";
        assert!(lint_table_violations("Cargo.toml", good).is_empty());
        let drifted = good.replace("expect_used = \"deny\"", "expect_used = \"warn\"");
        let v = lint_table_violations("Cargo.toml", &drifted);
        assert_eq!(v.len(), 1);
        assert!(v[0].excerpt.contains("expect_used"));
    }

    #[test]
    fn manifest_optin_detected() {
        assert!(manifest_opts_into_lints("[lints]\nworkspace = true\n"));
        assert!(!manifest_opts_into_lints("[package]\nname = \"x\"\n"));
        assert!(!manifest_opts_into_lints("[lints]\nworkspace = false\n"));
    }

    #[test]
    fn full_tree_is_clean() {
        // The repo itself must pass its own lint — the acceptance
        // criterion for `cargo xtask lint` exiting 0.
        let root = workspace_root();
        let mut violations = Vec::new();
        for file in library_sources(&root) {
            let text = std::fs::read_to_string(&file)
                .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
            let label = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .display()
                .to_string();
            violations.extend(scan_source(&label, &text));
        }
        violations.extend(check_lint_table(&root));
        violations.extend(check_crate_lint_optin(&root));
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

//! Thin driver for the `bc-lint` workspace scan, invoked as
//! `cargo xtask lint`.
//!
//! All analysis lives in `bc-lint` (the lexer, the rule catalog, the
//! three audit passes, the report renderers and the self-test corpus);
//! this binary only resolves the workspace root, runs
//! [`bc_lint::run_workspace`], and decides where the output goes:
//!
//! * `cargo xtask lint` — compiler-style text to stdout/stderr, exit
//!   code 1 when anything fired;
//! * `cargo xtask lint --json [--out PATH]` — renders the byte-stable
//!   JSON report, cross-validates it with `bc_obs::json` (an
//!   independent parser: the renderer lives in dependency-free
//!   `bc-lint`, so a disagreement means one of them is wrong), writes
//!   it to `PATH` (default `lint_report.json` at the workspace root),
//!   and echoes it to stdout for CI capture.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask lint [--json] [--out PATH]");
            ExitCode::FAILURE
        }
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut out_path: Option<PathBuf> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let report = match bc_lint::run_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        let rendered = report.render_json();
        // Independent re-parse: bc-lint hand-renders its JSON without a
        // dependency, so run the document through bc-obs's validator
        // before anything downstream consumes it.
        if let Err(e) = bc_obs::json::validate_line(&rendered) {
            eprintln!("xtask: rendered report failed JSON validation: {e}");
            return ExitCode::FAILURE;
        }
        let path = out_path.unwrap_or_else(|| root.join("lint_report.json"));
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("xtask: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        print!("{rendered}");
        eprintln!("xtask: wrote {}", path.display());
    } else {
        print!("{}", report.render_text());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Workspace root: the parent of this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

//! Scenario description: everything a simulation run depends on.
//!
//! A [`Scenario`] bundles the network, the charger fleet, the operating
//! horizon, the energy parameters and the (optional) fault model into one
//! value. Two equal scenarios produce byte-identical event traces — the
//! engine has no other inputs and no hidden randomness.

use crate::clock;
use crate::fleet::DispatchPolicy;
use crate::queue::QueueBackend;
use bc_core::execute::RecoveryPolicy;
use bc_core::faults::{FaultModel, FaultModelError};
use bc_core::planner::Algorithm;
use bc_core::PlannerConfig;
use bc_units::{Joules, MetersPerSecond, Seconds, Watts};
use bc_wsn::Network;
use std::fmt;

/// The mobile-charger fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of chargers (≥ 1).
    pub size: usize,
    /// How tour stops are divided among them.
    pub dispatch: DispatchPolicy,
}

impl FleetConfig {
    /// The paper's single-charger fleet.
    #[must_use]
    pub fn single() -> Self {
        FleetConfig { size: 1, dispatch: DispatchPolicy::BundlePartition }
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// A complete, self-contained simulation input.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The sensor network (positions; per-sensor demand is taken to be
    /// `battery_j`, a full recharge).
    pub net: Network,
    /// Operating horizon.
    pub horizon_s: Seconds,
    /// Constant per-sensor drain power.
    pub drain_w: Watts,
    /// Sensor battery capacity. Recharges are clamped here.
    pub battery_j: Joules,
    /// Dispatch a round once this many sensors are at or below
    /// `trigger_level_j` (≥ 1; effectively capped at the network size).
    pub trigger_count: usize,
    /// Low-battery trigger level.
    pub trigger_level_j: Joules,
    /// Charger travel speed.
    pub speed_mps: MetersPerSecond,
    /// Planning algorithm for charging tours.
    pub algorithm: Algorithm,
    /// Planner environment (bundle radius, charging model, energy model).
    pub planner: PlannerConfig,
    /// Fault model replayed each round (`None` = perfect execution).
    pub faults: Option<FaultModel>,
    /// Recovery policy for fault-injected rounds.
    pub recovery: RecoveryPolicy,
    /// The charger fleet.
    pub fleet: FleetConfig,
    /// Capacity of the event-trace ring buffer (0 disables tracing).
    pub trace_capacity: usize,
    /// Future-event-queue backend. Backend choice affects throughput
    /// only; pop order — and therefore the trace — is identical.
    pub queue: QueueBackend,
}

impl Scenario {
    /// The paper's Section VI lifetime environment: 24 h horizon, 0.2 mW
    /// drain, 2 J batteries, trigger when a quarter of the network drops
    /// to 1 J, 1 m/s charger — single charger.
    #[must_use]
    pub fn paper_sim(net: Network, bundle_radius: f64, algorithm: Algorithm) -> Self {
        let n = net.len();
        Scenario {
            net,
            horizon_s: clock::hours(24.0),
            drain_w: Watts(2e-4),
            battery_j: Joules(2.0),
            trigger_count: (n / 4).max(1),
            trigger_level_j: Joules(1.0),
            speed_mps: MetersPerSecond(1.0),
            algorithm,
            planner: PlannerConfig::paper_sim(bundle_radius),
            faults: None,
            recovery: RecoveryPolicy::SkipAndContinue,
            fleet: FleetConfig::single(),
            trace_capacity: 256,
            queue: QueueBackend::BinaryHeap,
        }
    }

    /// Replaces the fleet.
    #[must_use]
    pub fn with_fleet(mut self, size: usize, dispatch: DispatchPolicy) -> Self {
        self.fleet = FleetConfig { size, dispatch };
        self
    }

    /// Selects the future-event-queue backend.
    #[must_use]
    pub fn with_queue(mut self, queue: QueueBackend) -> Self {
        self.queue = queue;
        self
    }

    /// Injects faults into every round.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultModel, recovery: RecoveryPolicy) -> Self {
        self.faults = Some(faults);
        self.recovery = recovery;
        self
    }

    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// A [`ScenarioError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if !(self.horizon_s > Seconds::ZERO && self.horizon_s.is_finite()) {
            return Err(ScenarioError::Horizon(self.horizon_s));
        }
        if !(self.speed_mps.get() > 0.0 && self.speed_mps.is_finite()) {
            return Err(ScenarioError::Speed(self.speed_mps));
        }
        if !(self.battery_j.get() > 0.0 && self.battery_j.is_finite()) {
            return Err(ScenarioError::Battery(self.battery_j));
        }
        if !(self.drain_w.get() >= 0.0 && self.drain_w.is_finite()) {
            return Err(ScenarioError::Drain(self.drain_w));
        }
        if !(self.trigger_level_j.get() >= 0.0 && self.trigger_level_j.is_finite()) {
            return Err(ScenarioError::TriggerLevel(self.trigger_level_j));
        }
        if self.trigger_count == 0 {
            return Err(ScenarioError::TriggerCount);
        }
        if self.fleet.size == 0 {
            return Err(ScenarioError::FleetSize);
        }
        if let Some(fm) = &self.faults {
            fm.validate().map_err(ScenarioError::Faults)?;
        }
        Ok(())
    }
}

/// Why a [`Scenario`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// Horizon must be positive and finite.
    Horizon(Seconds),
    /// Charger speed must be positive and finite.
    Speed(MetersPerSecond),
    /// Battery capacity must be positive and finite.
    Battery(Joules),
    /// Drain power must be non-negative and finite.
    Drain(Watts),
    /// Trigger level must be non-negative and finite.
    TriggerLevel(Joules),
    /// Trigger count must be at least 1.
    TriggerCount,
    /// Fleet must contain at least one charger.
    FleetSize,
    /// The fault model is invalid.
    Faults(FaultModelError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Horizon(h) => write!(f, "horizon must be positive, got {h}"),
            ScenarioError::Speed(s) => write!(f, "speed must be positive, got {s}"),
            ScenarioError::Battery(b) => write!(f, "battery must be positive, got {b}"),
            ScenarioError::Drain(d) => write!(f, "drain must be non-negative, got {d}"),
            ScenarioError::TriggerLevel(l) => {
                write!(f, "trigger level must be non-negative, got {l}")
            }
            ScenarioError::TriggerCount => write!(f, "trigger count must be at least 1"),
            ScenarioError::FleetSize => write!(f, "fleet must contain at least one charger"),
            ScenarioError::Faults(e) => write!(f, "invalid fault model: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_geom::Aabb;
    use bc_wsn::deploy;

    fn net() -> Network {
        deploy::uniform(10, Aabb::square(200.0), 2.0, 7)
    }

    #[test]
    fn paper_sim_validates() {
        let s = Scenario::paper_sim(net(), 10.0, Algorithm::Bc);
        assert!(s.validate().is_ok());
        assert_eq!(s.fleet.size, 1);
    }

    #[test]
    fn rejects_bad_fields() {
        let mut s = Scenario::paper_sim(net(), 10.0, Algorithm::Bc);
        s.horizon_s = Seconds::ZERO;
        assert!(matches!(s.validate(), Err(ScenarioError::Horizon(_))));

        let mut s = Scenario::paper_sim(net(), 10.0, Algorithm::Bc);
        s.trigger_count = 0;
        assert_eq!(s.validate(), Err(ScenarioError::TriggerCount));

        let mut s = Scenario::paper_sim(net(), 10.0, Algorithm::Bc);
        s.fleet.size = 0;
        assert_eq!(s.validate(), Err(ScenarioError::FleetSize));

        let mut s = Scenario::paper_sim(net(), 10.0, Algorithm::Bc);
        s.speed_mps = MetersPerSecond(0.0);
        assert!(matches!(s.validate(), Err(ScenarioError::Speed(_))));
    }

    #[test]
    fn builders_compose() {
        let s = Scenario::paper_sim(net(), 10.0, Algorithm::BcOpt)
            .with_fleet(3, DispatchPolicy::RoundRobin)
            .with_faults(FaultModel::with_rate(1, 0.1), RecoveryPolicy::SkipAndContinue)
            .with_queue(QueueBackend::Calendar);
        assert_eq!(s.fleet.size, 3);
        assert!(s.faults.is_some());
        assert_eq!(s.queue, QueueBackend::Calendar);
        assert!(s.validate().is_ok());
    }
}

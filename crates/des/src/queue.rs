//! Deterministic future-event queue.
//!
//! A binary min-heap keyed by `(Time, sequence)`. The sequence number is
//! assigned at scheduling time and breaks ties between simultaneous events,
//! so the pop order is a pure function of the schedule calls — independent
//! of heap internals, hash seeds, or platform. Two runs that schedule the
//! same events in the same order pop them in the same order, which is the
//! foundation of the byte-identical-trace guarantee.

use crate::clock::Time;
use crate::event::Event;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// An event stamped with its firing time and scheduling sequence number.
#[derive(Debug, Clone, Copy)]
pub struct Scheduled {
    /// Instant at which the event fires.
    pub at: Time,
    /// Monotone sequence number assigned when the event was scheduled.
    /// Simultaneous events fire in ascending `seq` order.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `event` to fire at `at`; returns the assigned sequence
    /// number. Events at equal times fire in scheduling order.
    pub fn schedule(&mut self, at: Time, event: Event) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
        seq
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop().map(|Reverse(s)| s)
    }

    /// Firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::seconds;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(seconds(5.0)), Event::Dispatch);
        q.schedule(Time::at(seconds(1.0)), Event::Returned { charger: 0 });
        q.schedule(Time::at(seconds(3.0)), Event::Dispatch);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|s| s.at.seconds().get())
            .collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = Time::at(seconds(2.0));
        let a = q.schedule(t, Event::Returned { charger: 7 });
        let b = q.schedule(t, Event::Dispatch);
        assert!(a < b);
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        assert_eq!(first.event, Event::Returned { charger: 7 });
        assert_eq!(second.event, Event::Dispatch);
        assert_eq!((first.seq, second.seq), (a, b));
    }

    #[test]
    fn counters_track_scheduling() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::ZERO, Event::Dispatch);
        q.schedule(Time::ZERO, Event::Dispatch);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}

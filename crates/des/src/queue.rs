//! Deterministic future-event queue.
//!
//! Events are keyed by `(Time, sequence)`. The sequence number is
//! assigned at scheduling time and breaks ties between simultaneous events,
//! so the pop order is a pure function of the schedule calls — independent
//! of queue internals, hash seeds, or platform. Two runs that schedule the
//! same events in the same order pop them in the same order, which is the
//! foundation of the byte-identical-trace guarantee.
//!
//! Two backends implement that contract behind [`EventQueue`]:
//!
//! * [`QueueBackend::BinaryHeap`] — a binary min-heap, `O(log n)` per
//!   operation, the original PR 4 structure and still the default;
//! * [`QueueBackend::Calendar`] — a calendar queue (Brown 1988): events
//!   hash into time-ordered buckets of width `w`, so at steady state a
//!   schedule is a short sorted insert into one bucket and a pop scans
//!   forward from a cursor, both amortized `O(1)`. At campaign scale
//!   (10⁶+ pending events) this trades the heap's deep cache-missing
//!   sift chains for short, contiguous bucket touches.
//!
//! Backend choice affects throughput only — `tests/queue_backends.rs`
//! property-checks that both produce identical `(Time, seq)` pop
//! sequences on arbitrary interleaved schedules.

use crate::clock::Time;
use crate::event::Event;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// An event stamped with its firing time and scheduling sequence number.
#[derive(Debug, Clone, Copy)]
pub struct Scheduled {
    /// Instant at which the event fires.
    pub at: Time,
    /// Monotone sequence number assigned when the event was scheduled.
    /// Simultaneous events fire in ascending `seq` order.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// Which pending-event structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Binary min-heap: `O(log n)` per operation. The default.
    #[default]
    BinaryHeap,
    /// Calendar queue: time-bucketed, amortized `O(1)` per operation at
    /// steady state; built for campaign-scale pending sets.
    Calendar,
}

impl QueueBackend {
    /// Both backends, for head-to-head benchmarks.
    pub const ALL: [QueueBackend; 2] = [QueueBackend::BinaryHeap, QueueBackend::Calendar];

    /// Stable label used in benchmark JSON and trend lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QueueBackend::BinaryHeap => "binary-heap",
            QueueBackend::Calendar => "calendar",
        }
    }
}

/// Calendar-queue sizing bounds: buckets stay within `[4, 2^22]` so a
/// degenerate schedule can neither thrash resizes nor exhaust memory on
/// bucket headers alone.
const MIN_BUCKETS: usize = 4;
const MAX_BUCKETS: usize = 1 << 22;

/// Events per bucket the resize policy aims for. Near-empty buckets
/// (the textbook ~1) make every probe a cache miss across a huge
/// header array; a short sorted run per bucket keeps the header array
/// hot and the intra-bucket insert a single-cache-line memmove.
const TARGET_OCCUPANCY: usize = 8;

/// A calendar queue: `nbuckets` (a power of two) "days" of `width`
/// seconds each; an event at time `t` lives in virtual bucket
/// `floor(t / width)`, physically at `vb mod nbuckets`. Buckets keep
/// their events sorted *descending* by `(at, seq)` so the bucket minimum
/// pops from the `Vec` tail in `O(1)`.
///
/// A pop scans at most one "year" (all buckets) forward from a cursor
/// parked at the last known minimum; a schedule earlier than the cursor
/// pulls the cursor back, so the scan invariant — no pending event lives
/// before the cursor's virtual bucket — always holds. When a year scan
/// finds nothing (events sparser than `nbuckets * width`), a direct
/// min-scan across bucket tails resolves the pop and re-parks the
/// cursor. Resizes re-target [`TARGET_OCCUPANCY`] events per bucket as
/// the population drifts past 2× / below ¼ of that target and
/// re-estimate the width from the pending span, amortizing to `O(1)`
/// per operation.
#[derive(Debug)]
struct CalendarQueue {
    buckets: Vec<Vec<Scheduled>>,
    /// Reciprocal of the seconds spanned by one bucket; multiplying is
    /// cheaper than dividing in the per-operation hash.
    inv_width: f64,
    /// Virtual bucket the pop cursor is parked at.
    cur_vb: i64,
    len: usize,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue { buckets: vec![Vec::new(); MIN_BUCKETS], inv_width: 1.0, cur_vb: 0, len: 0 }
    }

    /// Virtual (un-wrapped) bucket index of `t`, saturated to i64 range.
    /// Any positive factor keeps this monotone in `t`, which is all
    /// correctness needs; the factor only tunes occupancy.
    fn vb_of(&self, t: Time) -> i64 {
        let raw = (t.seconds().get() * self.inv_width).floor();
        #[allow(clippy::cast_possible_truncation)] // clamped to i64-representable range below
        {
            raw.clamp(-9.0e18, 9.0e18) as i64 // cast-ok: clamped bucket index to integer
        }
    }

    /// Physical bucket index of virtual bucket `vb`.
    fn idx_of(&self, vb: i64) -> usize {
        let n = self.buckets.len() as i64; // cast-ok: bucket count bounded by MAX_BUCKETS
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // rem_euclid is in [0, n)
        {
            vb.rem_euclid(n) as usize // cast-ok: non-negative remainder to index
        }
    }

    fn push(&mut self, s: Scheduled) {
        if self.len + 1 > self.buckets.len() * TARGET_OCCUPANCY * 2
            && self.buckets.len() < MAX_BUCKETS
        {
            self.rebuild(self.len + 1);
        }
        let vb = self.vb_of(s.at);
        if self.len == 0 || vb < self.cur_vb {
            self.cur_vb = vb;
        }
        let idx = self.idx_of(vb);
        let bucket = &mut self.buckets[idx];
        let pos = bucket.partition_point(|x| x.cmp(&s) == Ordering::Greater);
        bucket.insert(pos, s);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Scheduled> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as i64; // cast-ok: bucket count bounded by MAX_BUCKETS
        // Scan one year forward from the cursor: the first bucket tail
        // that belongs to its virtual bucket is the global minimum. The
        // bucket count is always a power of two, so the physical index
        // advances by mask-wrap instead of a division per step.
        let mask = self.buckets.len() - 1;
        let mut idx = self.idx_of(self.cur_vb);
        for step in 0..n {
            let vb = self.cur_vb + step;
            if let Some(last) = self.buckets[idx].last() {
                if self.vb_of(last.at) == vb {
                    self.cur_vb = vb;
                    let s = self.buckets[idx].pop();
                    self.len -= 1;
                    self.maybe_shrink();
                    return s;
                }
            }
            idx = (idx + 1) & mask;
        }
        // Events are sparser than one year: direct min-scan of the
        // bucket tails, then re-park the cursor at the found minimum.
        let mut best_idx = 0usize;
        let mut best_key: Option<(Time, u64)> = None;
        for (i, b) in self.buckets.iter().enumerate() {
            if let Some(last) = b.last() {
                let key = (last.at, last.seq);
                if best_key.is_none_or(|bk| key < bk) {
                    best_key = Some(key);
                    best_idx = i;
                }
            }
        }
        let s = self.buckets[best_idx].pop();
        if let Some(sch) = s {
            self.cur_vb = self.vb_of(sch.at);
            self.len -= 1;
            self.maybe_shrink();
        }
        s
    }

    /// The pending minimum without removing it. Worst case `O(nbuckets)`
    /// (a full year scan plus fallback); the engine's hot loop pops
    /// directly instead of peeking.
    fn peek(&self) -> Option<Scheduled> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as i64; // cast-ok: bucket count bounded by MAX_BUCKETS
        let mask = self.buckets.len() - 1;
        let mut idx = self.idx_of(self.cur_vb);
        for step in 0..n {
            let vb = self.cur_vb + step;
            if let Some(last) = self.buckets[idx].last() {
                if self.vb_of(last.at) == vb {
                    return Some(*last);
                }
            }
            idx = (idx + 1) & mask;
        }
        self.buckets.iter().filter_map(|b| b.last()).min().copied()
    }

    fn maybe_shrink(&mut self) {
        if self.len < self.buckets.len() * TARGET_OCCUPANCY / 4 && self.buckets.len() > MIN_BUCKETS
        {
            self.rebuild(self.len.max(1));
        }
    }

    /// Re-sizes to `target / TARGET_OCCUPANCY` buckets (rounded up to a
    /// power of two) and re-estimates the width from the pending span,
    /// then redistributes every event.
    fn rebuild(&mut self, target: usize) {
        let mut items: Vec<Scheduled> =
            self.buckets.iter_mut().flat_map(std::mem::take).collect();
        // Descending global sort: each bucket then receives its events
        // already in descending order, so plain pushes keep the
        // sorted-bucket invariant.
        items.sort_unstable_by(|a, b| b.cmp(a));
        let nbuckets = (target / TARGET_OCCUPANCY)
            .max(1)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        self.inv_width = 1.0 / estimate_width(&items, nbuckets);
        self.buckets = vec![Vec::new(); nbuckets];
        self.len = items.len();
        self.cur_vb = items.last().map_or(0, |min| self.vb_of(min.at));
        for s in items {
            let idx = self.idx_of(self.vb_of(s.at));
            self.buckets[idx].push(s);
        }
    }
}

/// Bucket width sizing one year (`nbuckets * width`) at 1.25× the
/// pending span, so pops cover the whole span without wrapping while
/// each spanned bucket holds close to [`TARGET_OCCUPANCY`] events.
/// `items` must be sorted descending. Degenerate spans (empty, single
/// instant) fall back to 1 s.
fn estimate_width(items: &[Scheduled], nbuckets: usize) -> f64 {
    if items.len() < 2 {
        return 1.0;
    }
    let max = items[0].at.seconds().get();
    let min = items[items.len() - 1].at.seconds().get();
    let span = max - min;
    if span <= 0.0 || !span.is_finite() {
        return 1.0;
    }
    (1.25 * span / nbuckets as f64).max(1.0e-9) // cast-ok: bucket count to divisor
}

#[derive(Debug)]
enum Inner {
    Heap(BinaryHeap<Reverse<Scheduled>>),
    Calendar(CalendarQueue),
}

/// The future-event list.
#[derive(Debug)]
pub struct EventQueue {
    inner: Inner,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty binary-heap-backed queue.
    #[must_use]
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::BinaryHeap)
    }

    /// An empty queue on the chosen backend.
    #[must_use]
    pub fn with_backend(backend: QueueBackend) -> Self {
        let inner = match backend {
            QueueBackend::BinaryHeap => Inner::Heap(BinaryHeap::new()),
            QueueBackend::Calendar => Inner::Calendar(CalendarQueue::new()),
        };
        EventQueue { inner, next_seq: 0 }
    }

    /// Which backend this queue runs on.
    #[must_use]
    pub fn backend(&self) -> QueueBackend {
        match self.inner {
            Inner::Heap(_) => QueueBackend::BinaryHeap,
            Inner::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Schedule `event` to fire at `at`; returns the assigned sequence
    /// number. Events at equal times fire in scheduling order.
    pub fn schedule(&mut self, at: Time, event: Event) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.inner {
            Inner::Heap(heap) => heap.push(Reverse(Scheduled { at, seq, event })),
            Inner::Calendar(cal) => cal.push(Scheduled { at, seq, event }),
        }
        seq
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<Scheduled> {
        match &mut self.inner {
            Inner::Heap(heap) => heap.pop().map(|Reverse(s)| s),
            Inner::Calendar(cal) => cal.pop(),
        }
    }

    /// Firing time of the earliest pending event, if any. `O(1)` on the
    /// heap backend; worst-case `O(buckets)` on the calendar backend —
    /// hot loops should pop and act on the returned event instead.
    #[must_use]
    pub fn peek_time(&self) -> Option<Time> {
        match &self.inner {
            Inner::Heap(heap) => heap.peek().map(|Reverse(s)| s.at),
            Inner::Calendar(cal) => cal.peek().map(|s| s.at),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(heap) => heap.len(),
            Inner::Calendar(cal) => cal.len,
        }
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::seconds;

    #[test]
    fn pops_in_time_order() {
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(Time::at(seconds(5.0)), Event::Dispatch);
            q.schedule(Time::at(seconds(1.0)), Event::Returned { charger: 0 });
            q.schedule(Time::at(seconds(3.0)), Event::Dispatch);
            assert_eq!(q.peek_time(), Some(Time::at(seconds(1.0))), "{}", backend.label());
            let order: Vec<f64> = std::iter::from_fn(|| q.pop())
                .map(|s| s.at.seconds().get())
                .collect();
            assert_eq!(order, vec![1.0, 3.0, 5.0], "{}", backend.label());
        }
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            let t = Time::at(seconds(2.0));
            let a = q.schedule(t, Event::Returned { charger: 7 });
            let b = q.schedule(t, Event::Dispatch);
            assert!(a < b);
            let first = q.pop().unwrap();
            let second = q.pop().unwrap();
            assert_eq!(first.event, Event::Returned { charger: 7 });
            assert_eq!(second.event, Event::Dispatch);
            assert_eq!((first.seq, second.seq), (a, b));
        }
    }

    #[test]
    fn backends_agree_through_resizes_and_interleaving() {
        // Enough events to force the calendar through several grow and
        // shrink rebuilds, with a deterministic pseudo-random schedule
        // and interleaved pops (reinsert-after-pop, as invalidation-heavy
        // engine runs produce).
        let mut heap = EventQueue::new();
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        assert_eq!(heap.backend(), QueueBackend::BinaryHeap);
        assert_eq!(cal.backend(), QueueBackend::Calendar);
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut pending = 0usize;
        let mut popped = Vec::new();
        for round in 0..2000 {
            let t = Time::at(seconds((rand() % 100_000) as f64 / 8.0)); // cast-ok: bounded random tick to seconds
            heap.schedule(t, Event::Dispatch);
            cal.schedule(t, Event::Dispatch);
            pending += 1;
            // Pop in bursts so the population swings widely.
            let burst = if round % 5 == 0 { 3 } else { 0 };
            for _ in 0..burst.min(pending) {
                let a = heap.pop().unwrap();
                let b = cal.pop().unwrap();
                assert_eq!((a.at, a.seq), (b.at, b.seq));
                popped.push((a.at, a.seq));
                pending -= 1;
            }
        }
        while let Some(a) = heap.pop() {
            let b = cal.pop().unwrap();
            assert_eq!((a.at, a.seq), (b.at, b.seq));
            popped.push((a.at, a.seq));
        }
        assert!(cal.is_empty());
        let mut sorted = popped.clone();
        sorted.sort();
        // Within each drain burst order is globally sorted; across
        // bursts it need not be, but both backends agreed pairwise on
        // every pop, and every event came out exactly once.
        assert_eq!(popped.len(), 2000);
        assert_eq!(sorted.iter().map(|p| p.1).collect::<std::collections::BTreeSet<_>>().len(), 2000);
    }

    #[test]
    fn calendar_handles_sparse_far_apart_events() {
        // Events much sparser than one calendar year exercise the
        // fallback min-scan and cursor re-parking.
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        for i in 0..8u32 {
            q.schedule(Time::at(seconds(f64::from(i) * 1.0e6)), Event::Dispatch);
        }
        let mut last = None;
        while let Some(s) = q.pop() {
            if let Some(prev) = last {
                assert!(s.at > prev);
            }
            last = Some(s.at);
        }
        assert_eq!(last, Some(Time::at(seconds(7.0e6))));
    }

    #[test]
    fn counters_track_scheduling() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::ZERO, Event::Dispatch);
        q.schedule(Time::ZERO, Event::Dispatch);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}

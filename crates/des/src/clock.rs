//! Logical simulation clock.
//!
//! This module is the **only** place in `bc-des` that is allowed to touch the
//! raw `f64` inside [`Seconds`] (enforced by `cargo xtask lint`, rule
//! `raw-time`). Every other module manipulates time exclusively through
//! [`Time`] / [`Clock`] and the dimensionally-typed operators of `bc-units`,
//! so a simulation timestamp can never be accidentally mixed with a distance
//! or an energy expressed as a bare float.
//!
//! [`Time`] is an absolute instant on the simulation timeline (seconds since
//! scenario start) with a **total order**: comparisons go through
//! [`f64::total_cmp`], which makes it usable as a `BinaryHeap` key even
//! though the underlying representation is a float. Scenario validation
//! rejects non-finite horizons, so NaN never enters the queue in practice;
//! the total order is belt-and-braces determinism.

use bc_units::Seconds;
use std::cmp::Ordering;
use std::fmt;

/// An absolute instant on the simulation timeline.
///
/// Internally this is "seconds since scenario start". `Time` is totally
/// ordered (via `total_cmp`), `Copy`, and deliberately does *not* expose its
/// inner float: arithmetic happens through [`Time::advance`] /
/// [`Time::since`], which keep the units straight.
#[derive(Debug, Clone, Copy)]
pub struct Time(Seconds);

impl Time {
    /// Scenario start (t = 0 s).
    pub const ZERO: Time = Time(Seconds::ZERO);

    /// The instant `elapsed` after scenario start.
    #[must_use]
    pub fn at(elapsed: Seconds) -> Self {
        Time(elapsed)
    }

    /// Elapsed simulation time since scenario start.
    #[must_use]
    pub fn seconds(self) -> Seconds {
        self.0
    }

    /// The instant `dt` after `self`.
    #[must_use]
    pub fn advance(self, dt: Seconds) -> Self {
        Time(self.0 + dt)
    }

    /// Duration from `earlier` to `self` (negative if `earlier` is later).
    #[must_use]
    pub fn since(self, earlier: Time) -> Seconds {
        self.0 - earlier.0
    }

    /// True when the instant is a finite timestamp.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl PartialEq for Time {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.get().total_cmp(&other.0.get())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

/// Monotone logical clock owned by the engine.
///
/// The clock only moves forward: [`Clock::advance_to`] debug-asserts
/// monotonicity, which catches event-ordering bugs at the source instead of
/// as mysteriously negative durations downstream.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    now: Time,
}

impl Clock {
    /// A clock at scenario start.
    #[must_use]
    pub fn new() -> Self {
        Clock { now: Time::ZERO }
    }

    /// Current simulation instant.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advance to `t`. Time never flows backwards; a regression is a bug in
    /// the event queue, so it is debug-asserted rather than silently clamped.
    pub fn advance_to(&mut self, t: Time) {
        debug_assert!(t >= self.now, "clock regression: {} -> {}", self.now, t);
        if t > self.now {
            self.now = t;
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

/// Sanctioned construction of a duration from a raw second count.
///
/// Modules outside `clock` are linted against calling `Seconds(..)` directly;
/// they build durations through these helpers (or receive them already typed
/// from `bc-units` arithmetic).
#[must_use]
pub fn seconds(s: f64) -> Seconds {
    Seconds(s)
}

/// `m` minutes as a typed duration.
#[must_use]
pub fn minutes(m: f64) -> Seconds {
    Seconds(m * 60.0)
}

/// `h` hours as a typed duration.
#[must_use]
pub fn hours(h: f64) -> Seconds {
    Seconds(h * 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_orders_totally() {
        let a = Time::at(seconds(1.0));
        let b = Time::at(seconds(2.0));
        assert!(a < b);
        assert_eq!(a, Time::at(seconds(1.0)));
        assert!(Time::ZERO < a);
    }

    #[test]
    fn advance_and_since_round_trip() {
        let a = Time::at(seconds(10.0));
        let b = a.advance(seconds(5.0));
        assert_eq!(b.since(a), seconds(5.0));
        assert_eq!(b.seconds(), seconds(15.0));
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = Clock::new();
        c.advance_to(Time::at(seconds(3.0)));
        c.advance_to(Time::at(seconds(3.0)));
        assert_eq!(c.now(), Time::at(seconds(3.0)));
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(minutes(2.0), seconds(120.0));
        assert_eq!(hours(1.0), seconds(3600.0));
    }
}

//! The discrete-event engine.
//!
//! # Event model
//!
//! Sensor batteries are *lazy linear trajectories*: the engine stores
//! `(level, updated, generation)` per sensor and schedules the two future
//! crossings that matter — the low-battery trigger and depletion — as
//! events. Recharging a sensor bumps its generation, which invalidates any
//! still-queued crossing computed from the stale trajectory; stale events
//! are dropped when they fire. Quiescent stretches of the horizon therefore
//! cost zero work, in contrast to the legacy fixed-interval integrator.
//!
//! # Round realization
//!
//! When the low-battery population reaches the trigger while the fleet is
//! idle, a `Dispatch` event plans a round **through [`ContextCache`]** (so
//! replans reuse cached candidate/distance/power artifacts) and unrolls it
//! into per-charger *segments* (leg → backoff → dwell). Three modes:
//!
//! - **single charger + faults**: the round is delegated to
//!   [`bc_core::execute::Executor`] (`execute_with_dead`), and the realized
//!   timeline is replayed as events — bit-compatible with the legacy
//!   `sim::lifetime` fault path, including its round-end application of
//!   hardware deaths.
//! - **single charger, no faults**: the legacy integrator's leg ordering is
//!   reproduced exactly (the closing leg is driven *first*, the charger
//!   lives in the field and never detours to base), which is what makes the
//!   death-time equivalence test tight.
//! - **multi-charger**: tour stops are divided by the fleet's
//!   [`DispatchPolicy`]; each charger drives base → its arc → base. With
//!   faults, the round's [`bc_core::faults::FaultSchedule`] is applied
//!   directly (stall-stretched legs, retry backoff, degradation-stretched
//!   dwells, abandoned stops) and pinned hardware deaths fire as
//!   `FaultDeath` events when the owning stop is reached; dead sensors are
//!   then removed from the cached network before the next plan.
//!
//! A low-battery crossing that fires *mid-round* for a sensor with no
//! remaining scheduled service marks the plan stale; the next dispatch
//! re-plans through the cache and counts a replan.

use crate::clock::{Clock, Time};
use crate::event::Event;
use crate::fleet::{assign_stops, ChargerLedger};
use crate::queue::EventQueue;
use crate::scenario::{Scenario, ScenarioError};
use crate::state::SensorBank;
use crate::trace::{TraceRecord, TraceRing};
use bc_core::context::ContextCache;
use bc_core::execute::{ExecError, Executor};
use bc_core::faults::FaultModel;
use bc_core::plan::ChargingPlan;
use bc_core::plan::PlanError;
use bc_geom::Point;
use bc_units::{Joules, Meters, Seconds};
use bc_wsn::{Network, Sensor};
use std::fmt;

/// Why a simulation run failed.
#[derive(Debug)]
pub enum DesError {
    /// The scenario failed validation.
    Scenario(ScenarioError),
    /// Planning (or replanning) a round failed.
    Plan(PlanError),
    /// Fault-injected execution of a round failed.
    Exec(ExecError),
}

impl fmt::Display for DesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesError::Scenario(e) => write!(f, "invalid scenario: {e}"),
            DesError::Plan(e) => write!(f, "planning failed: {e}"),
            DesError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for DesError {}

impl From<ScenarioError> for DesError {
    fn from(e: ScenarioError) -> Self {
        DesError::Scenario(e)
    }
}

impl From<PlanError> for DesError {
    fn from(e: PlanError) -> Self {
        DesError::Plan(e)
    }
}

impl From<ExecError> for DesError {
    fn from(e: ExecError) -> Self {
        DesError::Exec(e)
    }
}

/// Ledger imbalance detected by [`DesReport::check_fleet_ledger`].
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerImbalance {
    /// Sum of per-charger ledger energies.
    pub fleet_sum_j: Joules,
    /// Run-level charger energy total.
    pub total_j: Joules,
}

impl fmt::Display for LedgerImbalance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fleet ledgers sum to {} but the run total is {}",
            self.fleet_sum_j, self.total_j
        )
    }
}

/// Outcome of a simulation run — the legacy lifetime metrics plus
/// event-level and fleet-level observability.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// Charging rounds dispatched within the horizon.
    pub rounds: usize,
    /// Total fleet energy across all rounds.
    pub charger_energy_j: Joules,
    /// Sensor-seconds spent dead (battery at zero).
    pub downtime_sensor_s: Seconds,
    /// Fraction of sensor-time alive, in `[0, 1]`.
    pub availability: f64,
    /// Number of sensors that ever died.
    pub sensors_ever_dead: usize,
    /// Lowest battery level observed anywhere.
    pub min_battery_j: Joules,
    /// Highest battery level observed anywhere. The engine clamps
    /// recharges at capacity, so this never exceeds the configured
    /// battery capacity.
    pub max_battery_j: Joules,
    /// Sensors permanently lost to injected hardware faults.
    pub fault_deaths: usize,
    /// Sum over rounds of live sensors the round failed to charge.
    pub stranded_sensor_rounds: usize,
    /// Total time spent recovering from faults across all rounds.
    pub recovery_latency_s: Seconds,
    /// Total energy spent above the fault-free cost of each round.
    pub extra_energy_j: Joules,
    /// Plans rebuilt after the first (low-battery staleness triggers and
    /// post-death network repairs), all through the context cache.
    pub replans: usize,
    /// Recovery visits to the base station across all rounds.
    pub base_returns: usize,
    /// Per-sensor instant of first death (battery or hardware), if any.
    pub first_death_s: Vec<Option<Seconds>>,
    /// Events processed within the horizon.
    pub events_processed: u64,
    /// Events ever scheduled (processed + stale + beyond-horizon).
    pub events_scheduled: u64,
    /// Per-charger ledgers, indexed by fleet position.
    pub fleet: Vec<ChargerLedger>,
    /// Fraction of fleet-time spent away from base, in `[0, 1]`.
    pub fleet_utilization: f64,
    /// Tail of the event trace (bounded ring; oldest first).
    pub trace: Vec<TraceRecord>,
    /// Trace records evicted from the ring.
    pub trace_dropped: u64,
}

impl DesReport {
    /// Contract check: the per-charger ledgers must account for every
    /// joule in `charger_energy_j` (up to float summation noise).
    ///
    /// # Errors
    ///
    /// A [`LedgerImbalance`] carrying both sides of the failed identity.
    pub fn check_fleet_ledger(&self) -> Result<(), LedgerImbalance> {
        let fleet_sum_j: Joules = self.fleet.iter().map(ChargerLedger::total_energy_j).sum();
        let tol = 1e-9 * self.charger_energy_j.abs().max(Joules(1.0)).get();
        if (fleet_sum_j - self.charger_energy_j).abs().get() <= tol {
            Ok(())
        } else {
            Err(LedgerImbalance { fleet_sum_j, total_j: self.charger_energy_j })
        }
    }
}

/// Runs `scenario` to its horizon.
///
/// Deterministic: equal scenarios produce equal reports, byte-identical
/// event traces included.
///
/// # Errors
///
/// [`DesError`] if the scenario is invalid, a (re)plan fails, or a
/// fault-injected round cannot be executed.
pub fn run(scenario: &Scenario) -> Result<DesReport, DesError> {
    scenario.validate()?;
    Engine::new(scenario)?.run()
}

/// How a sensor's recharge dwell translates into harvested energy.
#[derive(Debug, Clone)]
struct Segment {
    /// Plan stop this segment realizes (`None` for base/closing legs).
    stop_tag: Option<usize>,
    /// Where the charger parks.
    anchor: Point,
    /// Length of the leg into this segment.
    leg_m: Meters,
    /// Driving time of that leg, including fault stalls.
    leg_s: Seconds,
    /// Retry backoff before the dwell starts (costs time, no energy).
    backoff_s: Seconds,
    /// Realized dwell, including degradation stretch.
    dwell_s: Seconds,
    /// Charging efficiency applied to the harvest.
    efficiency: f64,
    /// Original indices of sensors recharged when the dwell completes.
    /// Pruned in place when a pinned fault kills a member mid-round.
    served: Vec<usize>,
    /// True for the final leg back to base: no dwell, ends the route.
    closing: bool,
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    Idle,
    Driving { seg: usize, since: Time },
    Charging { seg: usize, since: Time },
}

#[derive(Debug)]
struct ChargerState {
    segments: Vec<Segment>,
    next: usize,
    phase: Phase,
    round_started: Option<Time>,
    ledger: ChargerLedger,
}

/// Round realization mode, fixed for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Single charger with faults: rounds delegated to `bc_core::execute`.
    ExecutorRound,
    /// Everything else: segments built directly by the engine.
    Direct,
}

struct Engine<'a> {
    sc: &'a Scenario,
    mode: Mode,
    horizon: Time,
    trigger_eff: usize,
    clock: Clock,
    queue: EventQueue,
    trace: TraceRing,

    /// Original sensor positions (stable across network revisions).
    positions: Vec<Point>,
    /// SoA battery state, indexed by original sensor index.
    sensors: SensorBank,
    low_count: usize,
    dispatch_pending: bool,

    cache: ContextCache,
    plan: ChargingPlan,
    /// Current network index → original sensor index.
    orig_of: Vec<usize>,
    needs_replan: bool,
    pending_removals: Vec<usize>,

    chargers: Vec<ChargerState>,
    round_active: usize,
    /// Per original sensor: scheduled for service in the active round.
    still_scheduled: Vec<bool>,
    /// Per original sensor: recharged during the active round.
    round_served: Vec<bool>,
    /// Original sensors planned (live at dispatch) in the active round.
    round_planned: Vec<usize>,
    /// Deaths pinned per plan stop for the active round (direct mode).
    round_deaths: Vec<Vec<usize>>,
    /// Executor-mode deaths, applied at round end (legacy parity).
    pending_round_deaths: Vec<usize>,

    rounds: usize,
    replans: usize,
    base_returns: usize,
    stranded_rounds: usize,
    fault_death_count: usize,
    hw_dead_list: Vec<usize>,
    charger_energy: Joules,
    recovery_latency: Seconds,
    extra_energy: Joules,
    downtime: Seconds,
    min_battery: Joules,
    max_battery: Joules,
    events_processed: u64,
}

impl<'a> Engine<'a> {
    fn new(sc: &'a Scenario) -> Result<Self, DesError> {
        let n = sc.net.len();
        let capacity = sc.battery_j;
        // Plan against a demand of one full battery per sensor (worst-case
        // top-up), exactly like the legacy lifetime loop.
        let demand_sensors: Vec<Sensor> = sc
            .net
            .sensors()
            .iter()
            .map(|s| Sensor::new(s.id, s.pos, capacity.get()))
            .collect();
        let demand_net = Network::new(demand_sensors, sc.net.field(), sc.net.base());
        let cache = ContextCache::new(demand_net, sc.planner.clone());
        let plan = cache.plan(sc.algorithm)?.into_plan();
        let mode = if sc.faults.is_some() && sc.fleet.size == 1 {
            Mode::ExecutorRound
        } else {
            Mode::Direct
        };
        Ok(Engine {
            sc,
            mode,
            horizon: Time::at(sc.horizon_s),
            trigger_eff: sc.trigger_count.min(n.max(1)),
            clock: Clock::new(),
            queue: EventQueue::with_backend(sc.queue),
            trace: TraceRing::new(sc.trace_capacity),
            positions: sc.net.positions().to_vec(),
            sensors: SensorBank::new(n, capacity),
            low_count: 0,
            dispatch_pending: false,
            cache,
            plan,
            orig_of: (0..n).collect(),
            needs_replan: false,
            pending_removals: Vec::new(),
            chargers: (0..sc.fleet.size)
                .map(|c| ChargerState {
                    segments: Vec::new(),
                    next: 0,
                    phase: Phase::Idle,
                    round_started: None,
                    ledger: ChargerLedger::new(c),
                })
                .collect(),
            round_active: 0,
            still_scheduled: vec![false; n],
            round_served: vec![false; n],
            round_planned: Vec::new(),
            round_deaths: Vec::new(),
            pending_round_deaths: Vec::new(),
            rounds: 0,
            replans: 0,
            base_returns: 0,
            stranded_rounds: 0,
            fault_death_count: 0,
            hw_dead_list: Vec::new(),
            charger_energy: Joules(0.0),
            recovery_latency: Seconds::ZERO,
            extra_energy: Joules(0.0),
            downtime: Seconds::ZERO,
            min_battery: capacity,
            max_battery: capacity,
            events_processed: 0,
        })
    }

    fn run(mut self) -> Result<DesReport, DesError> {
        // Root span of the run's causal tree: every trace event, replan
        // pipeline and counter the single-threaded engine loop emits
        // parents under it (replans nest their own `plan.run` subtree).
        let mut run_span = bc_obs::active().then(|| bc_obs::ScopedSpan::enter("des", "run"));
        self.init_batteries();
        // Pop-first: the calendar backend's pop is amortized O(1) but
        // its peek is a scan, so the loop takes the event and checks the
        // horizon on the popped timestamp instead of peeking.
        while let Some(sch) = self.queue.pop() {
            if sch.at > self.horizon {
                break;
            }
            self.clock.advance_to(sch.at);
            let rec = TraceRecord { at: sch.at, seq: sch.seq, event: sch.event };
            self.trace.push(rec);
            crate::trace::emit_obs(&rec);
            self.events_processed += 1;
            // A `?` here drops (and so still emits) the open run span.
            self.handle(sch.event)?;
        }
        if let Some(mut s) = run_span.take() {
            s.add_field("events", self.events_processed);
            s.finish();
        }
        Ok(self.finalize())
    }

    // ---- battery trajectories -------------------------------------------

    /// Settle sensor `s`'s lazy trajectory to the current instant and
    /// return the settled level.
    fn settle(&mut self, s: usize) -> Joules {
        let now = self.clock.now();
        self.sensors.settle(s, now, self.sc.drain_w)
    }

    /// A sensor is low when its level is at or below the trigger. The
    /// zero-drain knife edge (`level == trigger`, drain exactly 0) does
    /// not count, mirroring the legacy integrator's wait computation.
    fn is_low(&self, level: Joules) -> bool {
        level < self.sc.trigger_level_j
            || (level == self.sc.trigger_level_j && self.sc.drain_w > bc_units::Watts(0.0))
    }

    /// (Re)schedule the low-battery and depletion crossings of sensor `s`
    /// from its current trajectory. Crossings beyond the horizon are not
    /// queued — the finalizer settles every trajectory at the horizon.
    fn schedule_battery_events(&mut self, s: usize) {
        if self.sensors.hw_dead(s) || self.sc.drain_w <= bc_units::Watts(0.0) {
            return;
        }
        let now = self.clock.now();
        let gen = u64::from(self.sensors.gen(s));
        let level = self.sensors.level(s);
        if level > self.sc.trigger_level_j {
            let t_low = now.advance((level - self.sc.trigger_level_j) / self.sc.drain_w);
            if t_low <= self.horizon {
                self.queue.schedule(t_low, Event::LowBattery { sensor: s, gen });
            }
        }
        if level > Joules(0.0) {
            let t_dead = now.advance(level / self.sc.drain_w);
            if t_dead <= self.horizon {
                self.queue.schedule(t_dead, Event::Depleted { sensor: s, gen });
            }
        }
    }

    fn init_batteries(&mut self) {
        for s in 0..self.sensors.len() {
            if self.is_low(self.sensors.level(s)) {
                self.sensors.set_low(s, true);
                self.low_count += 1;
            }
            self.schedule_battery_events(s);
        }
        self.maybe_dispatch();
    }

    /// Refill sensor `s` from a dwell of `dwell` at `anchor`, clamped at
    /// capacity (the battery-overfill invariant), reviving it if it was
    /// battery-dead, and rebuild its crossings.
    fn recharge(&mut self, s: usize, anchor: Point, dwell: Seconds, efficiency: f64) {
        if self.sensors.hw_dead(s) {
            return;
        }
        let now = self.clock.now();
        let pre = self.settle(s);
        self.min_battery = self.min_battery.min(pre);
        let d = Meters(self.positions[s].distance(anchor));
        let harvested = self.sc.planner.charging.delivered_energy(d, dwell) * efficiency;
        let level = (pre + harvested).min(self.sc.battery_j);
        debug_assert!(level <= self.sc.battery_j, "recharge overfilled a battery");
        self.max_battery = self.max_battery.max(level);
        let low = self.is_low(level);
        if let Some(dead_at) = self.sensors.take_dead_since(s) {
            self.downtime += now.since(dead_at);
        }
        self.sensors.set_level(s, level);
        self.sensors.set_updated(s, now);
        let gen = u64::from(self.sensors.bump_gen(s));
        let was_low = self.sensors.low(s);
        self.sensors.set_low(s, low);
        if bc_obs::active() {
            // The generation bump just invalidated any queued crossings
            // computed from the stale trajectory.
            bc_obs::event(
                "des",
                "battery.invalidate",
                &[
                    bc_obs::Field::new("sensor", s),
                    bc_obs::Field::new("gen", gen),
                    bc_obs::Field::new("level_j", level.get()),
                    bc_obs::Field::new("low", low),
                ],
            );
        }
        match (was_low, low) {
            (true, false) => self.low_count -= 1,
            (false, true) => self.low_count += 1,
            _ => {}
        }
        self.schedule_battery_events(s);
    }

    /// Permanent hardware death of sensor `s` at the current instant.
    fn apply_hw_death(&mut self, s: usize) {
        if self.sensors.hw_dead(s) {
            return;
        }
        let now = self.clock.now();
        self.settle(s);
        self.min_battery = Joules(0.0);
        self.sensors.set_level(s, Joules(0.0));
        self.sensors.set_updated(s, now);
        self.sensors.set_hw_dead(s);
        // `mark_dead_at` keeps an earlier battery-death instant:
        // downtime has been accruing since then.
        self.sensors.mark_dead_at(s, now);
        self.sensors.bump_gen(s);
        if self.sensors.low(s) {
            self.sensors.set_low(s, false);
            self.low_count -= 1;
        }
        self.hw_dead_list.push(s);
        self.fault_death_count += 1;
        self.still_scheduled[s] = false;
        // Prune the victim from every not-yet-completed service set.
        for c in 0..self.chargers.len() {
            let from = self.chargers[c].next;
            for seg in self.chargers[c].segments.iter_mut().skip(from) {
                seg.served.retain(|&x| x != s);
            }
        }
        if self.mode == Mode::Direct && self.sc.faults.is_some() {
            self.pending_removals.push(s);
        }
    }

    // ---- dispatch --------------------------------------------------------

    fn maybe_dispatch(&mut self) {
        if self.round_active == 0
            && !self.dispatch_pending
            && self.low_count >= self.trigger_eff
            && self.clock.now() < self.horizon
            && !self.sensors.is_empty()
        {
            self.dispatch_pending = true;
            self.queue.schedule(self.clock.now(), Event::Dispatch);
        }
    }

    fn handle(&mut self, ev: Event) -> Result<(), DesError> {
        match ev {
            Event::LowBattery { sensor, gen } => {
                if self.sensors.hw_dead(sensor)
                    || u64::from(self.sensors.gen(sensor)) != gen
                    || self.sensors.low(sensor)
                {
                    return Ok(());
                }
                self.sensors.set_low(sensor, true);
                self.low_count += 1;
                if self.round_active > 0 {
                    // Low mid-round with no service still scheduled: the
                    // current plan is stale — replan at the next dispatch.
                    if !self.still_scheduled[sensor] {
                        self.needs_replan = true;
                    }
                } else {
                    self.maybe_dispatch();
                }
                Ok(())
            }
            Event::Depleted { sensor, gen } => {
                if self.sensors.hw_dead(sensor) || u64::from(self.sensors.gen(sensor)) != gen {
                    return Ok(());
                }
                let now = self.clock.now();
                self.settle(sensor);
                self.min_battery = Joules(0.0);
                self.sensors.set_level(sensor, Joules(0.0));
                self.sensors.mark_dead_at(sensor, now);
                Ok(())
            }
            Event::Dispatch => {
                self.dispatch_pending = false;
                self.dispatch_round()
            }
            Event::Arrival { charger, seg } => self.on_arrival(charger, seg),
            Event::ChargingComplete { charger, seg } => self.on_charging_complete(charger, seg),
            Event::Returned { charger } => {
                let now = self.clock.now();
                let ch = &mut self.chargers[charger];
                if let Some(t0) = ch.round_started.take() {
                    ch.ledger.busy_s += now.since(t0);
                }
                ch.phase = Phase::Idle;
                self.round_active -= 1;
                if self.round_active == 0 {
                    self.end_of_round();
                }
                Ok(())
            }
            Event::FaultDeath { sensor } => {
                self.apply_hw_death(sensor);
                Ok(())
            }
        }
    }

    fn dispatch_round(&mut self) -> Result<(), DesError> {
        if self.round_active > 0
            || self.low_count < self.trigger_eff
            || (self.clock.now() >= self.horizon)
        {
            return Ok(());
        }
        // Repair the cached network first: sensors lost to hardware faults
        // are removed (bumping the cache revision), then a staleness
        // trigger rebuilds the plan — both through the context cache.
        for orig in std::mem::take(&mut self.pending_removals) {
            if let Some(ci) = self.orig_of.iter().position(|&o| o == orig) {
                self.plan = self.cache.remove_sensor(&self.plan, ci)?;
                self.orig_of.remove(ci);
                self.replans += 1;
            }
        }
        if self.needs_replan {
            self.plan = self.cache.plan(self.sc.algorithm)?.into_plan();
            self.needs_replan = false;
            self.replans += 1;
        }
        if self.plan.stops.is_empty() {
            return Ok(());
        }
        self.rounds += 1;
        if bc_obs::active() {
            bc_obs::event(
                "des",
                "dispatch.round",
                &[
                    bc_obs::Field::new("round", self.rounds),
                    bc_obs::Field::new("stops", self.plan.stops.len()),
                    bc_obs::Field::new("low", self.low_count),
                    bc_obs::Field::new(
                        "mode",
                        match self.mode {
                            Mode::ExecutorRound => "executor",
                            Mode::Direct => "direct",
                        },
                    ),
                ],
            );
        }
        let sc = self.sc;
        let routes = match self.mode {
            Mode::ExecutorRound => self.executor_round()?,
            Mode::Direct => match &sc.faults {
                Some(fm) => self.direct_faulty_round(fm),
                None => self.direct_clean_round(),
            },
        };
        let now = self.clock.now();
        self.round_served.iter_mut().for_each(|b| *b = false);
        for (c, segments) in routes.into_iter().enumerate() {
            let ch = &mut self.chargers[c];
            ch.segments = segments;
            ch.next = 0;
            if ch.segments.is_empty() {
                continue;
            }
            ch.round_started = Some(now);
            self.round_active += 1;
            self.start_segment(c);
        }
        Ok(())
    }

    /// Single charger + faults: delegate the round to `bc_core::execute`
    /// and unroll the realized timeline into segments. Recovery metrics
    /// come wholesale from the report (legacy parity, even when the
    /// horizon later clips the replay).
    fn executor_round(&mut self) -> Result<Vec<Vec<Segment>>, DesError> {
        let fm = self.sc.faults.clone().unwrap_or_else(FaultModel::none);
        let round_seed = u64::try_from(self.rounds - 1).unwrap_or(u64::MAX);
        let report = Executor::new(self.cache.network(), self.cache.config())
            .with_speed(self.sc.speed_mps.get())
            .with_policy(self.sc.recovery)
            .execute_with_dead(&self.plan, &fm, round_seed, &self.hw_dead_list)?;
        let mut segments = Vec::with_capacity(report.timeline.len() + 1);
        let mut replayed_m = Meters(0.0);
        let mut replayed_s = Seconds::ZERO;
        for e in &report.timeline {
            replayed_m += e.drive_m;
            replayed_s = replayed_s + e.drive_s + e.backoff_s + e.dwell_s;
            segments.push(Segment {
                stop_tag: e.plan_stop,
                anchor: e.anchor,
                leg_m: e.drive_m,
                leg_s: e.drive_s,
                backoff_s: e.backoff_s,
                dwell_s: e.dwell_s,
                efficiency: e.efficiency,
                served: e.served.clone(),
                closing: false,
            });
        }
        // The closing leg lives in the report totals, not the timeline.
        let close_s = (report.duration_s - replayed_s).max(Seconds::ZERO);
        let close_m = (report.distance_m - replayed_m).max(Meters(0.0));
        if close_s > Seconds::ZERO || close_m > Meters(0.0) {
            segments.push(Segment {
                stop_tag: None,
                anchor: self.sc.net.base(),
                leg_m: close_m,
                leg_s: close_s,
                backoff_s: Seconds::ZERO,
                dwell_s: Seconds::ZERO,
                efficiency: 1.0,
                served: Vec::new(),
                closing: true,
            });
        }
        for seg in &segments {
            for &s in &seg.served {
                self.still_scheduled[s] = true;
            }
        }
        // Hardware deaths land at round end, like the legacy loop.
        self.pending_round_deaths = report.fault_deaths.clone();
        self.stranded_rounds += report.stranded.len();
        self.recovery_latency += report.recovery_latency_s;
        self.extra_energy += report.extra_energy_j;
        self.replans += report.replans;
        self.base_returns += report.base_returns;
        self.round_planned.clear();
        self.round_deaths.clear();
        Ok(vec![segments])
    }

    /// Fault-free rounds. A single charger reproduces the legacy
    /// integrator exactly: the closing leg is driven *first* (from the
    /// last stop's anchor into stop 0) and the charger stays in the field
    /// between rounds. A fleet instead splits the tour by dispatch policy,
    /// each charger driving base → its arc → base.
    fn direct_clean_round(&mut self) -> Vec<Vec<Segment>> {
        self.build_direct_routes(None)
    }

    /// Multi-charger rounds with faults: apply this round's schedule
    /// directly — stall-stretched legs, retry backoff, degradation
    /// stretch, abandoned stops — and pin hardware deaths to the arrival
    /// at their stop.
    fn direct_faulty_round(&mut self, fm: &FaultModel) -> Vec<Vec<Segment>> {
        self.build_direct_routes(Some(fm))
    }

    fn build_direct_routes(&mut self, fm: Option<&FaultModel>) -> Vec<Vec<Segment>> {
        let stops = &self.plan.stops;
        let m = stops.len();
        let speed = self.sc.speed_mps;
        let schedule = fm.map(|f| {
            let round_seed = u64::try_from(self.rounds - 1).unwrap_or(u64::MAX);
            f.schedule(round_seed, self.orig_of.len(), m)
        });

        // Per-stop realized parameters.
        let mut stop_backoff = vec![Seconds::ZERO; m];
        let mut stop_dwell: Vec<Seconds> = stops.iter().map(|s| s.dwell).collect();
        let mut stop_eff = vec![1.0f64; m];
        let mut stop_stall = vec![1.0f64; m];
        let mut abandoned = vec![false; m];
        if let (Some(f), Some(sched)) = (fm, &schedule) {
            for i in 0..m {
                stop_stall[i] = sched.stalls[i];
                let fails = sched.failed_attempts[i];
                if fails > f.max_retries {
                    abandoned[i] = true;
                    stop_backoff[i] = backoff_total(f.backoff_s, f.max_retries);
                    stop_dwell[i] = Seconds::ZERO;
                } else {
                    stop_backoff[i] = backoff_total(f.backoff_s, fails);
                    if let Some(eff) = sched.degraded[i] {
                        stop_eff[i] = eff;
                        stop_dwell[i] = stops[i].dwell / eff;
                    }
                }
            }
        }

        // Round-level fault accounting, full-round (legacy parity with the
        // executor path, which books the report wholesale at dispatch):
        // recovery latency is stall + backoff + stretch; extra energy is
        // the realized-vs-planned dwell energy delta (stretches cost,
        // abandonments refund).
        self.round_planned.clear();
        self.round_deaths = vec![Vec::new(); m];
        let mut served_of: Vec<Vec<usize>> = Vec::with_capacity(m);
        for (i, stop) in stops.iter().enumerate() {
            let members: Vec<usize> = stop
                .bundle
                .sensors
                .iter()
                .map(|&ci| self.orig_of[ci])
                .filter(|&o| !self.sensors.hw_dead(o))
                .collect();
            self.round_planned.extend(members.iter().copied());
            if schedule.is_some() {
                self.recovery_latency = self.recovery_latency
                    + stop_backoff[i]
                    + (stop_dwell[i] - stops[i].dwell).max(Seconds::ZERO);
                self.extra_energy = self.extra_energy
                    + self.sc.planner.energy.charging_energy(stop_dwell[i])
                    - self.sc.planner.energy.charging_energy(stops[i].dwell);
            }
            served_of.push(if abandoned[i] { Vec::new() } else { members });
        }
        if let Some(sched) = &schedule {
            for (ci, death) in sched.deaths.iter().enumerate() {
                if let Some(stop) = *death {
                    let orig = self.orig_of[ci];
                    if !self.sensors.hw_dead(orig) && stop < m {
                        self.round_deaths[stop].push(orig);
                    }
                }
            }
        }

        let anchors: Vec<Point> = stops.iter().map(bc_core::plan::Stop::anchor).collect();
        let mut routes: Vec<Vec<Segment>> = Vec::with_capacity(self.sc.fleet.size);
        if self.sc.fleet.size == 1 {
            // Legacy leg ordering: leg i runs from stop (i-1 mod m) into
            // stop i, so the closing leg comes first and the charger ends
            // the round parked at the last stop.
            let mut segments = Vec::with_capacity(m);
            for i in 0..m {
                let prev = anchors[(i + m - 1) % m];
                let leg_m = Meters(prev.distance(anchors[i]));
                let nominal_s = leg_m.time_at(speed);
                let leg_s = nominal_s * stop_stall[i];
                if schedule.is_some() {
                    self.recovery_latency += (leg_s - nominal_s).max(Seconds::ZERO);
                }
                segments.push(Segment {
                    stop_tag: Some(i),
                    anchor: anchors[i],
                    leg_m,
                    leg_s,
                    backoff_s: stop_backoff[i],
                    dwell_s: stop_dwell[i],
                    efficiency: stop_eff[i],
                    served: served_of[i].clone(),
                    closing: false,
                });
            }
            routes.push(segments);
        } else {
            let base = self.sc.net.base();
            let assignment =
                assign_stops(self.sc.fleet.dispatch, &anchors, self.sc.fleet.size, base);
            for route in assignment {
                let mut segments = Vec::with_capacity(route.len() + 1);
                let mut pos = base;
                for &i in &route {
                    let leg_m = Meters(pos.distance(anchors[i]));
                    let nominal_s = leg_m.time_at(speed);
                    let leg_s = nominal_s * stop_stall[i];
                    if schedule.is_some() {
                        self.recovery_latency += (leg_s - nominal_s).max(Seconds::ZERO);
                    }
                    segments.push(Segment {
                        stop_tag: Some(i),
                        anchor: anchors[i],
                        leg_m,
                        leg_s,
                        backoff_s: stop_backoff[i],
                        dwell_s: stop_dwell[i],
                        efficiency: stop_eff[i],
                        served: served_of[i].clone(),
                        closing: false,
                    });
                    pos = anchors[i];
                }
                if !segments.is_empty() {
                    let leg_m = Meters(pos.distance(base));
                    segments.push(Segment {
                        stop_tag: None,
                        anchor: base,
                        leg_m,
                        leg_s: leg_m.time_at(speed),
                        backoff_s: Seconds::ZERO,
                        dwell_s: Seconds::ZERO,
                        efficiency: 1.0,
                        served: Vec::new(),
                        closing: true,
                    });
                }
                routes.push(segments);
            }
        }
        for route in &routes {
            for seg in route {
                for &s in &seg.served {
                    self.still_scheduled[s] = true;
                }
            }
        }
        self.pending_round_deaths.clear();
        routes
    }

    // ---- charger motion --------------------------------------------------

    fn start_segment(&mut self, c: usize) {
        let now = self.clock.now();
        let ch = &mut self.chargers[c];
        let Some(seg) = ch.segments.get(ch.next) else {
            // Route exhausted without a closing leg (the legacy
            // stay-in-field single charger): return on the spot.
            self.queue.schedule(now, Event::Returned { charger: c });
            return;
        };
        let idx = ch.next;
        let at = now.advance(seg.leg_s);
        ch.phase = Phase::Driving { seg: idx, since: now };
        self.queue.schedule(at, Event::Arrival { charger: c, seg: idx });
    }

    fn spend_move(&mut self, c: usize, length: Meters) {
        let e = self.sc.planner.energy.movement_energy(length);
        self.chargers[c].ledger.move_energy_j += e;
        self.charger_energy += e;
    }

    fn spend_charge(&mut self, c: usize, dwell: Seconds) {
        let e = self.sc.planner.energy.charging_energy(dwell);
        self.chargers[c].ledger.charge_energy_j += e;
        self.charger_energy += e;
    }

    fn on_arrival(&mut self, c: usize, seg_idx: usize) -> Result<(), DesError> {
        let now = self.clock.now();
        let (leg_m, leg_s, backoff, dwell, stop_tag, closing) = {
            let seg = &self.chargers[c].segments[seg_idx];
            (seg.leg_m, seg.leg_s, seg.backoff_s, seg.dwell_s, seg.stop_tag, seg.closing)
        };
        self.chargers[c].ledger.distance_m += leg_m;
        self.chargers[c].ledger.drive_s += leg_s;
        self.spend_move(c, leg_m);
        // Hardware deaths pinned to this stop fire on arrival, before the
        // dwell can complete.
        if let Some(tag) = stop_tag {
            if tag < self.round_deaths.len() {
                for s in std::mem::take(&mut self.round_deaths[tag]) {
                    self.queue.schedule(now, Event::FaultDeath { sensor: s });
                }
            }
        }
        if closing {
            self.queue.schedule(now, Event::Returned { charger: c });
        } else {
            self.chargers[c].phase = Phase::Charging { seg: seg_idx, since: now };
            let done = now.advance(backoff).advance(dwell);
            self.queue.schedule(done, Event::ChargingComplete { charger: c, seg: seg_idx });
        }
        Ok(())
    }

    fn on_charging_complete(&mut self, c: usize, seg_idx: usize) -> Result<(), DesError> {
        let (anchor, backoff, dwell, efficiency, served) = {
            let seg = &self.chargers[c].segments[seg_idx];
            (seg.anchor, seg.backoff_s, seg.dwell_s, seg.efficiency, seg.served.clone())
        };
        let ledger = &mut self.chargers[c].ledger;
        ledger.backoff_s += backoff;
        ledger.dwell_s += dwell;
        if dwell > Seconds::ZERO {
            ledger.stops_served += 1;
        }
        self.spend_charge(c, dwell);
        for s in served {
            self.recharge(s, anchor, dwell, efficiency);
            self.still_scheduled[s] = false;
            self.round_served[s] = true;
            self.chargers[c].ledger.sensors_charged += 1;
        }
        self.chargers[c].next = seg_idx + 1;
        self.start_segment(c);
        Ok(())
    }

    fn end_of_round(&mut self) {
        let now = self.clock.now();
        // Executor-mode hardware deaths land here, as events (they fire
        // after this handler, before any same-instant re-dispatch).
        for s in std::mem::take(&mut self.pending_round_deaths) {
            self.queue.schedule(now, Event::FaultDeath { sensor: s });
        }
        // Direct-mode stranding: planned, still alive, not served.
        for s in std::mem::take(&mut self.round_planned) {
            if !self.sensors.hw_dead(s) && !self.round_served[s] {
                self.stranded_rounds += 1;
            }
        }
        self.still_scheduled.iter_mut().for_each(|b| *b = false);
        self.maybe_dispatch();
    }

    // ---- horizon ---------------------------------------------------------

    fn finalize(mut self) -> DesReport {
        self.clock.advance_to(self.horizon);
        let horizon = self.horizon;
        // Settle in-flight chargers: pro-rate the active leg or dwell.
        for c in 0..self.chargers.len() {
            let phase = self.chargers[c].phase;
            match phase {
                Phase::Idle => {}
                Phase::Driving { seg, since } => {
                    let (leg_m, leg_s) = {
                        let s = &self.chargers[c].segments[seg];
                        (s.leg_m, s.leg_s)
                    };
                    let elapsed = horizon.since(since);
                    let frac = if leg_s > Seconds::ZERO { (elapsed / leg_s).min(1.0) } else { 1.0 };
                    let part = leg_m * frac;
                    self.chargers[c].ledger.distance_m += part;
                    self.chargers[c].ledger.drive_s += elapsed;
                    self.spend_move(c, part);
                }
                Phase::Charging { seg, since } => {
                    let (anchor, backoff, dwell, efficiency, served) = {
                        let s = &self.chargers[c].segments[seg];
                        (s.anchor, s.backoff_s, s.dwell_s, s.efficiency, s.served.clone())
                    };
                    let elapsed = horizon.since(since);
                    let backoff_done = elapsed.min(backoff);
                    let dwell_done = (elapsed - backoff).max(Seconds::ZERO).min(dwell);
                    let ledger = &mut self.chargers[c].ledger;
                    ledger.backoff_s += backoff_done;
                    ledger.dwell_s += dwell_done;
                    self.spend_charge(c, dwell_done);
                    if dwell_done > Seconds::ZERO {
                        // Partial harvest for the interrupted dwell.
                        for s in served {
                            self.recharge(s, anchor, dwell_done, efficiency);
                        }
                    }
                }
            }
            if let Some(t0) = self.chargers[c].round_started.take() {
                self.chargers[c].ledger.busy_s += horizon.since(t0);
            }
        }
        // A clipped executor round still applies its hardware deaths
        // (legacy parity); they accrue no downtime past the horizon.
        for s in std::mem::take(&mut self.pending_round_deaths) {
            self.apply_hw_death(s);
        }
        // Settle every battery trajectory at the horizon.
        let n = self.sensors.len();
        for s in 0..n {
            let level = self.settle(s);
            self.min_battery = self.min_battery.min(level);
            if let Some(dead_at) = self.sensors.take_dead_since(s) {
                self.downtime += horizon.since(dead_at);
            }
        }

        let horizon_s = self.sc.horizon_s;
        let total_sensor_s = horizon_s * (n as f64); // cast-ok: sensor count to sensor-time
        let availability = if n == 0 {
            1.0
        } else {
            1.0 - self.downtime / total_sensor_s
        };
        let fleet_n = self.chargers.len();
        let busy: Seconds = self.chargers.iter().map(|c| c.ledger.busy_s).sum();
        let fleet_utilization = busy / (horizon_s * (fleet_n as f64)); // cast-ok: fleet size to fleet-time
        let trace_dropped = self.trace.dropped();
        let report = DesReport {
            rounds: self.rounds,
            charger_energy_j: self.charger_energy,
            downtime_sensor_s: self.downtime,
            availability,
            sensors_ever_dead: self.sensors.ever_dead_count(),
            min_battery_j: if n == 0 { Joules(0.0) } else { self.min_battery },
            max_battery_j: if n == 0 { Joules(0.0) } else { self.max_battery },
            fault_deaths: self.fault_death_count,
            stranded_sensor_rounds: self.stranded_rounds,
            recovery_latency_s: self.recovery_latency,
            extra_energy_j: self.extra_energy,
            replans: self.replans,
            base_returns: self.base_returns,
            first_death_s: (0..n)
                .map(|s| self.sensors.first_death(s).map(Time::seconds))
                .collect(),
            events_processed: self.events_processed,
            events_scheduled: self.queue.scheduled_total(),
            fleet: self.chargers.into_iter().map(|c| c.ledger).collect(),
            fleet_utilization,
            trace: self.trace.into_vec(),
            trace_dropped,
        };
        debug_assert!(
            report.check_fleet_ledger().is_ok(),
            "fleet ledgers out of balance with the run total"
        );
        report
    }
}

/// Exponential retry backoff: the charger waits `backoff * 2^(k-1)` after
/// failure `k` (mirrors `bc_core::execute`).
fn backoff_total(backoff: Seconds, fails: u32) -> Seconds {
    let mut total = Seconds::ZERO;
    let mut wait = backoff;
    for _ in 0..fails {
        total += wait;
        wait = wait * 2.0;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::DispatchPolicy;
    use bc_core::execute::RecoveryPolicy;
    use bc_core::planner::Algorithm;
    use bc_geom::Aabb;
    use bc_wsn::deploy;

    fn scenario(n: usize, seed: u64) -> Scenario {
        let net = deploy::uniform(n, Aabb::square(200.0), 2.0, seed);
        let mut sc = Scenario::paper_sim(net, 30.0, Algorithm::Bc);
        sc.horizon_s = crate::clock::hours(12.0);
        sc
    }

    #[test]
    fn clean_run_dispatches_rounds_and_balances_ledgers() {
        let rep = run(&scenario(20, 3)).unwrap();
        assert!(rep.rounds > 0);
        assert!(rep.availability > 0.99, "availability {}", rep.availability);
        assert!(rep.charger_energy_j > Joules(0.0));
        rep.check_fleet_ledger().unwrap();
        assert_eq!(rep.fleet.len(), 1);
        assert!(rep.events_processed > 0);
        assert!(rep.max_battery_j <= Joules(2.0));
    }

    #[test]
    fn three_charger_fleet_balances_ledgers() {
        for policy in [
            DispatchPolicy::NearestIdle,
            DispatchPolicy::RoundRobin,
            DispatchPolicy::BundlePartition,
        ] {
            let sc = scenario(20, 4).with_fleet(3, policy);
            let rep = run(&sc).unwrap();
            assert!(rep.rounds > 0, "{policy:?} dispatched nothing");
            rep.check_fleet_ledger().unwrap();
            assert_eq!(rep.fleet.len(), 3);
            let sum: Joules = rep.fleet.iter().map(ChargerLedger::total_energy_j).sum();
            assert!((sum - rep.charger_energy_j).abs() < Joules(1e-6));
            assert!(rep.fleet_utilization > 0.0 && rep.fleet_utilization <= 1.0);
        }
    }

    #[test]
    fn faulty_single_charger_matches_executor_semantics() {
        let sc = scenario(20, 5)
            .with_faults(FaultModel::with_rate(9, 0.3), RecoveryPolicy::SkipAndContinue);
        let rep = run(&sc).unwrap();
        assert!(rep.rounds > 0);
        assert!(rep.recovery_latency_s > Seconds::ZERO);
        rep.check_fleet_ledger().unwrap();
    }

    #[test]
    fn faulty_fleet_prunes_dead_sensors_from_future_plans() {
        let fm = FaultModel { death_prob: 0.4, ..FaultModel::none() };
        let sc = scenario(16, 6)
            .with_fleet(2, DispatchPolicy::RoundRobin)
            .with_faults(fm, RecoveryPolicy::SkipAndContinue);
        let rep = run(&sc).unwrap();
        assert!(rep.fault_deaths > 0, "40% death rate must kill someone");
        assert!(rep.replans > 0, "deaths must force replans");
        assert!(rep.sensors_ever_dead >= rep.fault_deaths);
        rep.check_fleet_ledger().unwrap();
    }

    #[test]
    fn trace_is_bounded() {
        let mut sc = scenario(20, 3);
        sc.trace_capacity = 8;
        let rep = run(&sc).unwrap();
        assert!(rep.trace.len() <= 8);
        assert!(rep.events_processed > 8);
    }

    #[test]
    fn overflowed_ring_reports_dropped_records() {
        // Regression: trace truncation must be visible, not silent. A
        // capacity-2 ring on any real run overflows immediately, and the
        // report must account for every evicted record.
        let mut sc = scenario(20, 3);
        sc.trace_capacity = 2;
        let rep = run(&sc).unwrap();
        assert_eq!(rep.trace.len(), 2);
        assert!(rep.events_processed > 2);
        assert_eq!(rep.trace_dropped, rep.events_processed - 2);
    }

    #[test]
    fn engine_events_bridge_into_obs() {
        use bc_obs::recorders::StatsRecorder;
        use std::sync::Arc;
        let stats = Arc::new(StatsRecorder::new());
        let rep = bc_obs::with_local(stats.clone(), || run(&scenario(20, 3)).unwrap());
        let snap = stats.snapshot();
        // Every processed event was mirrored into the recorder.
        let mirrored: u64 = snap
            .events
            .iter()
            .filter(|(k, _)| {
                k.strip_prefix("des.")
                    .is_some_and(|n| n != "battery.invalidate" && n != "dispatch.round")
            })
            .map(|(_, &n)| n)
            .sum();
        assert_eq!(mirrored, rep.events_processed);
        assert_eq!(
            snap.events.get("des.dispatch.round").copied().unwrap_or(0),
            u64::try_from(rep.rounds).unwrap(),
            "one dispatch.round event per round"
        );
        assert!(
            snap.events.get("des.battery.invalidate").copied().unwrap_or(0) > 0,
            "recharges must emit invalidation events"
        );
    }

    #[test]
    fn invalid_scenario_is_rejected() {
        let mut sc = scenario(5, 1);
        sc.fleet.size = 0;
        assert!(matches!(run(&sc), Err(DesError::Scenario(_))));
    }

    #[test]
    fn batteries_never_overfill() {
        let rep = run(&scenario(20, 8)).unwrap();
        assert!(
            rep.max_battery_j <= Joules(2.0),
            "max battery {} exceeds capacity",
            rep.max_battery_j
        );
    }
}

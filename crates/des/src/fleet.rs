//! Multi-charger fleet: dispatch policies and per-charger ledgers.
//!
//! Stop assignment is a pure function of `(policy, anchors, fleet size,
//! base)`: no RNG, no map iteration, ties broken by lowest charger index.
//! That keeps fleet scheduling bit-reproducible, which the determinism
//! proptests pin down.

use bc_geom::Point;
use bc_units::{Joules, Meters, Seconds};

/// How charging stops of a planned tour are divided among the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Greedy: walk the tour in order, give each stop to the charger whose
    /// current position (base, or its last assigned stop) is nearest.
    /// Distance ties resolve to the lowest charger index.
    NearestIdle,
    /// Stop `i` goes to charger `i mod fleet_size`.
    RoundRobin,
    /// Contiguous tour arcs: the tour is cut into `fleet_size` balanced
    /// runs, preserving the planner's visiting order inside each run.
    BundlePartition,
}

impl DispatchPolicy {
    /// Stable label for telemetry.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DispatchPolicy::NearestIdle => "nearest-idle",
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::BundlePartition => "bundle-partition",
        }
    }
}

/// Assign tour stops (given by their anchor points, in tour order) to
/// `fleet_size` chargers starting from `base`. Returns one stop-index list
/// per charger, each in tour order. Deterministic: ties go to the lowest
/// charger index.
#[must_use]
pub fn assign_stops(
    policy: DispatchPolicy,
    anchors: &[Point],
    fleet_size: usize,
    base: Point,
) -> Vec<Vec<usize>> {
    let k = fleet_size.max(1);
    let mut out = vec![Vec::new(); k];
    if anchors.is_empty() {
        return out;
    }
    match policy {
        DispatchPolicy::RoundRobin => {
            for (i, _) in anchors.iter().enumerate() {
                out[i % k].push(i);
            }
        }
        DispatchPolicy::BundlePartition => {
            let m = anchors.len();
            for (c, stops) in out.iter_mut().enumerate() {
                let lo = c * m / k;
                let hi = (c + 1) * m / k;
                stops.extend(lo..hi);
            }
        }
        DispatchPolicy::NearestIdle => {
            let mut pos = vec![base; k];
            for (i, &anchor) in anchors.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = pos[0].distance(anchor);
                for (c, p) in pos.iter().enumerate().skip(1) {
                    let d = p.distance(anchor);
                    // Strict `<` keeps ties on the lowest charger index.
                    if d.total_cmp(&best_d) == std::cmp::Ordering::Less {
                        best = c;
                        best_d = d;
                    }
                }
                out[best].push(i);
                pos[best] = anchor;
            }
        }
    }
    out
}

/// Per-charger account of one simulation run, in the spirit of
/// `bc-core::execute::ExecutionReport` but accumulated across rounds.
///
/// The engine contract-checks that the fleet's ledger totals sum to the
/// run-level `charger_energy_j` (see `DesReport::check_fleet_ledger`).
#[derive(Debug, Clone, PartialEq)]
pub struct ChargerLedger {
    /// Fleet index of this charger.
    pub charger: usize,
    /// Total distance driven.
    pub distance_m: Meters,
    /// Time spent driving (including fault-stall stretches).
    pub drive_s: Seconds,
    /// Time spent in retry backoff at stops.
    pub backoff_s: Seconds,
    /// Time spent dwelling (radiating) at stops.
    pub dwell_s: Seconds,
    /// Total time away from base (dispatch to return), summed over rounds.
    pub busy_s: Seconds,
    /// Locomotion energy drawn from the charger's tank.
    pub move_energy_j: Joules,
    /// Radiated charging energy drawn from the charger's tank.
    pub charge_energy_j: Joules,
    /// Charging stops completed (dwell finished).
    pub stops_served: usize,
    /// Sensor recharges delivered (sensor-stop pairs, full dwells only).
    pub sensors_charged: usize,
}

impl ChargerLedger {
    /// A zeroed ledger for charger `charger`.
    #[must_use]
    pub fn new(charger: usize) -> Self {
        ChargerLedger {
            charger,
            distance_m: Meters(0.0),
            drive_s: Seconds::ZERO,
            backoff_s: Seconds::ZERO,
            dwell_s: Seconds::ZERO,
            busy_s: Seconds::ZERO,
            move_energy_j: Joules(0.0),
            charge_energy_j: Joules(0.0),
            stops_served: 0,
            sensors_charged: 0,
        }
    }

    /// Total energy drawn from this charger's tank.
    #[must_use]
    pub fn total_energy_j(&self) -> Joules {
        self.move_energy_j + self.charge_energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchors(points: &[(f64, f64)]) -> Vec<Point> {
        points.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn round_robin_interleaves() {
        let a = anchors(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let got = assign_stops(DispatchPolicy::RoundRobin, &a, 3, Point::new(0.0, 0.0));
        assert_eq!(got, vec![vec![0, 3], vec![1], vec![2]]);
    }

    #[test]
    fn bundle_partition_is_contiguous_and_balanced() {
        let a = anchors(&[(0.0, 0.0); 7]);
        let got = assign_stops(DispatchPolicy::BundlePartition, &a, 3, Point::new(0.0, 0.0));
        assert_eq!(got, vec![vec![0, 1], vec![2, 3], vec![4, 5, 6]]);
        let total: usize = got.iter().map(Vec::len).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn nearest_idle_breaks_ties_to_lowest_index() {
        // Both chargers start at base: equidistant from every stop, so the
        // first stop must go to charger 0 and pull it away from base.
        let a = anchors(&[(1.0, 0.0), (1.0, 0.1)]);
        let got = assign_stops(DispatchPolicy::NearestIdle, &a, 2, Point::new(0.0, 0.0));
        assert_eq!(got[0], vec![0, 1]);
        assert!(got[1].is_empty());
    }

    #[test]
    fn nearest_idle_spreads_distant_stops() {
        let a = anchors(&[(10.0, 0.0), (-10.0, 0.0)]);
        let got = assign_stops(DispatchPolicy::NearestIdle, &a, 2, Point::new(0.0, 0.0));
        // Stop 0 goes to charger 0 (tie at base), dragging it to x=10; stop 1
        // is then closer to charger 1 still sitting at base.
        assert_eq!(got, vec![vec![0], vec![1]]);
    }

    #[test]
    fn empty_tour_yields_empty_assignments() {
        let got = assign_stops(DispatchPolicy::NearestIdle, &[], 2, Point::new(0.0, 0.0));
        assert_eq!(got, vec![Vec::<usize>::new(), Vec::new()]);
    }

    #[test]
    fn ledger_totals() {
        let mut l = ChargerLedger::new(1);
        l.move_energy_j = Joules(2.0);
        l.charge_energy_j = Joules(3.0);
        assert_eq!(l.total_energy_j(), Joules(5.0));
    }
}

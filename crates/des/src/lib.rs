//! `bc-des`: deterministic discrete-event simulation of bundle-charging
//! deployments.
//!
//! The legacy `sim::lifetime` loop integrates the whole network over fixed
//! replay intervals with a single charger. This crate replaces that
//! substrate with a discrete-event engine:
//!
//! - an **event queue** keyed by `(time, sequence)`
//!   ([`queue::EventQueue`]), so simultaneous events resolve by scheduling
//!   order — never by queue internals. Two backends implement the same
//!   contract ([`queue::QueueBackend`]): the default binary heap and a
//!   calendar queue for campaign-scale pending sets;
//! - **SoA battery state** ([`state::SensorBank`]): per-field lanes and
//!   bit-packed flags keep 100k-sensor long-horizon runs memory-lean
//!   (~36.4 bytes/sensor);
//! - a **logical clock** in `bc-units` types ([`clock::Time`],
//!   [`clock::Clock`]); raw `f64` time arithmetic is confined to the clock
//!   module and linted everywhere else (`cargo xtask lint`, rule
//!   `raw-time`);
//! - event kinds ([`event::Event`]) for battery threshold crossings and
//!   depletion, charger arrival/charging-complete/return, replayed
//!   hardware faults, and threshold-triggered dispatch;
//! - a fleet of N mobile chargers with pluggable dispatch policies
//!   ([`fleet::DispatchPolicy`]) and per-charger ledgers
//!   ([`fleet::ChargerLedger`]), contract-checked against the run total;
//! - low-battery **replan triggers** that go through
//!   `bc_core::context::ContextCache`, so replans reuse cached planning
//!   artifacts;
//! - a [`scenario::Scenario`] description type and a bounded
//!   [`trace::TraceRing`] of the event tail for observability.
//!
//! Determinism is a hard guarantee: equal scenarios produce byte-identical
//! event traces (see `tests/des_determinism.rs` at the workspace root).
//!
//! ```
//! use bc_des::{run, Scenario, DispatchPolicy};
//! use bc_core::planner::Algorithm;
//! use bc_geom::Aabb;
//! use bc_wsn::deploy;
//!
//! let net = deploy::uniform(20, Aabb::square(200.0), 2.0, 1);
//! let scenario = Scenario::paper_sim(net, 30.0, Algorithm::BcOpt)
//!     .with_fleet(3, DispatchPolicy::NearestIdle);
//! let report = run(&scenario).unwrap();
//! assert!(report.rounds > 0);
//! report.check_fleet_ledger().unwrap();
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod event;
pub mod fleet;
pub mod queue;
pub mod scenario;
pub mod state;
pub mod trace;

pub use clock::{Clock, Time};
pub use engine::{run, DesError, DesReport, LedgerImbalance};
pub use event::Event;
pub use fleet::{assign_stops, ChargerLedger, DispatchPolicy};
pub use queue::{EventQueue, QueueBackend, Scheduled};
pub use scenario::{FleetConfig, Scenario, ScenarioError};
pub use state::SensorBank;
pub use trace::{TraceRecord, TraceRing};

//! Event vocabulary of the simulation.
//!
//! Events are small `Copy` records; everything bulky (segment payloads,
//! served-sensor sets) lives in engine state and is referenced by index.
//! Sensor-battery events carry a per-sensor *generation* counter: every
//! recharge bumps the sensor's generation, so battery events scheduled
//! against a stale trajectory are recognized and dropped when they fire,
//! instead of being chased down and deleted from the heap.

/// A single discrete event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A sensor's battery trajectory crossed the low-battery trigger level.
    /// Stale if the sensor's generation no longer matches `gen`.
    LowBattery {
        /// Original (scenario) sensor index.
        sensor: usize,
        /// Battery-trajectory generation this event was computed from.
        gen: u64,
    },
    /// A sensor's battery trajectory reached zero energy.
    /// Stale if the sensor's generation no longer matches `gen`.
    Depleted {
        /// Original (scenario) sensor index.
        sensor: usize,
        /// Battery-trajectory generation this event was computed from.
        gen: u64,
    },
    /// The low-battery threshold condition was met while the fleet was idle:
    /// dispatch a charging round (re-checked when the event fires).
    Dispatch,
    /// A charger finished the leg into segment `seg` of its current route.
    Arrival {
        /// Fleet index of the charger.
        charger: usize,
        /// Index into the charger's current segment list.
        seg: usize,
    },
    /// A charger finished backoff + dwell at segment `seg`; batteries of the
    /// segment's still-live served sensors are refilled at this instant.
    ChargingComplete {
        /// Fleet index of the charger.
        charger: usize,
        /// Index into the charger's current segment list.
        seg: usize,
    },
    /// A charger finished its closing leg and went idle at the base station.
    Returned {
        /// Fleet index of the charger.
        charger: usize,
    },
    /// A pinned hardware fault (replayed from `bc-core::faults`) killed a
    /// sensor. Scheduled at the instant the owning stop is reached, or at
    /// round end for rounds delegated to `bc-core::execute`.
    FaultDeath {
        /// Original (scenario) sensor index.
        sensor: usize,
    },
}

impl Event {
    /// Short stable label for traces and telemetry.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::LowBattery { .. } => "low-battery",
            Event::Depleted { .. } => "depleted",
            Event::Dispatch => "dispatch",
            Event::Arrival { .. } => "arrival",
            Event::ChargingComplete { .. } => "charging-complete",
            Event::Returned { .. } => "returned",
            Event::FaultDeath { .. } => "fault-death",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Event::Dispatch.kind(), "dispatch");
        assert_eq!(Event::LowBattery { sensor: 0, gen: 1 }.kind(), "low-battery");
        assert_eq!(Event::Returned { charger: 2 }.kind(), "returned");
    }
}

//! Structure-of-arrays sensor/battery state.
//!
//! The PR 4 engine kept one `SensorState` struct per sensor — fine for
//! paper-scale networks, but campaign runs sweep 10⁴–10⁵ sensors across
//! thousands of seeds, where the array-of-structs layout wastes memory
//! (booleans pad to bytes, `Option<Time>` doubles to 16 B) and scatters
//! the hot battery lanes across cache lines. [`SensorBank`] stores each
//! field as its own lane instead:
//!
//! * `level`, `updated`, `gen` — the lazy-trajectory hot path, touched
//!   on every settle/recharge, contiguous per lane;
//! * `low` / `hw_dead` / `ever_dead` — one bit each in packed words;
//! * `dead_since` / `first_death` — `Time` lanes with a NaN sentinel
//!   for "never died", halving the `Option<Time>` footprint (NaN can't
//!   collide with a real instant: scenario validation rejects
//!   non-finite horizons, so every recorded death time is finite).
//!
//! The per-sensor cost is fixed and reported by
//! [`SensorBank::bytes_per_sensor`] so `campaign_smoke` can track it as
//! a trend line (~36.4 B/sensor vs ~72 B for the old struct layout).
//!
//! Generation counters are `u32` here (4 B/sensor instead of 8); the
//! event payloads keep `u64`, and the engine widens with `u64::from` at
//! the boundary. A sensor cannot be recharged 2³² times within any
//! representable horizon, and the debug assertion in [`SensorBank::bump_gen`]
//! guards the wrap regardless.

use crate::clock::{seconds, Time};
use bc_units::{Joules, Watts};

/// One bit per sensor, packed 64 to a word.
#[derive(Debug, Clone, Default)]
struct BitLane {
    words: Vec<u64>,
}

impl BitLane {
    fn new(n: usize) -> Self {
        BitLane { words: vec![0; n.div_ceil(64)] }
    }

    fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    fn set(&mut self, i: usize, v: bool) {
        let bit = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= bit;
        } else {
            self.words[i / 64] &= !bit;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum() // cast-ok: popcount fits usize
    }
}

/// NaN sentinel for "no recorded instant" in the death-time lanes.
fn no_instant() -> Time {
    Time::at(seconds(f64::NAN))
}

/// Structure-of-arrays state for every sensor battery in a run.
///
/// Indices are *original* sensor indices (stable across network
/// revisions), matching the engine's addressing.
#[derive(Debug, Clone)]
pub struct SensorBank {
    level: Vec<Joules>,
    updated: Vec<Time>,
    gen: Vec<u32>,
    low: BitLane,
    hw_dead: BitLane,
    ever_dead: BitLane,
    /// Instant the current death started (NaN sentinel = alive).
    dead_since: Vec<Time>,
    /// Instant of first death ever (NaN sentinel = never died).
    first_death: Vec<Time>,
}

impl SensorBank {
    /// `n` sensors, all at `capacity`, trajectories anchored at t = 0.
    #[must_use]
    pub fn new(n: usize, capacity: Joules) -> Self {
        SensorBank {
            level: vec![capacity; n],
            updated: vec![Time::ZERO; n],
            gen: vec![0; n],
            low: BitLane::new(n),
            hw_dead: BitLane::new(n),
            ever_dead: BitLane::new(n),
            dead_since: vec![no_instant(); n],
            first_death: vec![no_instant(); n],
        }
    }

    /// Number of sensors in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        self.level.len()
    }

    /// True when the bank holds no sensors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.level.is_empty()
    }

    /// Fixed per-sensor memory cost of the lanes, in bytes. The three
    /// flag lanes cost one bit each.
    #[must_use]
    pub fn bytes_per_sensor() -> f64 {
        use std::mem::size_of;
        let fixed = size_of::<Joules>()      // level
            + size_of::<Time>()              // updated
            + size_of::<u32>()               // gen
            + 2 * size_of::<Time>(); // dead_since + first_death
        fixed as f64 + 3.0 / 8.0 // cast-ok: small constant byte count
    }

    /// Last-settled battery level of sensor `i`.
    #[must_use]
    pub fn level(&self, i: usize) -> Joules {
        self.level[i]
    }

    /// Overwrites sensor `i`'s settled level.
    pub fn set_level(&mut self, i: usize, level: Joules) {
        self.level[i] = level;
    }

    /// Projects sensor `i`'s lazy trajectory to instant `t` under
    /// constant `drain`, clamped at empty.
    #[must_use]
    pub fn level_at(&self, i: usize, t: Time, drain: Watts) -> Joules {
        (self.level[i] - drain * t.since(self.updated[i])).max(Joules(0.0))
    }

    /// Settles sensor `i`'s trajectory at `now` and returns the settled
    /// level.
    pub fn settle(&mut self, i: usize, now: Time, drain: Watts) -> Joules {
        let level = self.level_at(i, now, drain);
        self.level[i] = level;
        self.updated[i] = now;
        level
    }

    /// Re-anchors sensor `i`'s trajectory at `now`.
    pub fn set_updated(&mut self, i: usize, now: Time) {
        self.updated[i] = now;
    }

    /// Sensor `i`'s trajectory generation.
    #[must_use]
    pub fn gen(&self, i: usize) -> u32 {
        self.gen[i]
    }

    /// Bumps sensor `i`'s generation (invalidating queued crossings
    /// computed from the stale trajectory) and returns the new value.
    pub fn bump_gen(&mut self, i: usize) -> u32 {
        debug_assert!(self.gen[i] < u32::MAX, "generation counter wrapped");
        self.gen[i] = self.gen[i].wrapping_add(1);
        self.gen[i]
    }

    /// True when sensor `i` is at or below the low-battery trigger.
    #[must_use]
    pub fn low(&self, i: usize) -> bool {
        self.low.get(i)
    }

    /// Sets sensor `i`'s low-battery flag.
    pub fn set_low(&mut self, i: usize, v: bool) {
        self.low.set(i, v);
    }

    /// True when sensor `i` was lost to a hardware fault.
    #[must_use]
    pub fn hw_dead(&self, i: usize) -> bool {
        self.hw_dead.get(i)
    }

    /// Marks sensor `i` permanently lost to a hardware fault.
    pub fn set_hw_dead(&mut self, i: usize) {
        self.hw_dead.set(i, true);
    }

    /// True when sensor `i` has ever been dead (battery or hardware).
    #[must_use]
    pub fn ever_dead(&self, i: usize) -> bool {
        self.ever_dead.get(i)
    }

    /// How many sensors have ever been dead.
    #[must_use]
    pub fn ever_dead_count(&self) -> usize {
        self.ever_dead.count()
    }

    /// Records a death of sensor `i` at `now`: sets `ever_dead`, and
    /// starts `dead_since` / `first_death` if not already running. An
    /// earlier `dead_since` is kept — downtime has been accruing since
    /// then.
    pub fn mark_dead_at(&mut self, i: usize, now: Time) {
        self.ever_dead.set(i, true);
        if !self.dead_since[i].is_finite() {
            self.dead_since[i] = now;
        }
        if !self.first_death[i].is_finite() {
            self.first_death[i] = now;
        }
    }

    /// Takes the instant sensor `i`'s current death started, clearing
    /// it (the sensor is being revived or the run is settling up).
    pub fn take_dead_since(&mut self, i: usize) -> Option<Time> {
        let t = self.dead_since[i];
        if t.is_finite() {
            self.dead_since[i] = no_instant();
            Some(t)
        } else {
            None
        }
    }

    /// Instant of sensor `i`'s first death, if it ever died.
    #[must_use]
    pub fn first_death(&self, i: usize) -> Option<Time> {
        let t = self.first_death[i];
        t.is_finite().then_some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::seconds;

    #[test]
    fn lanes_round_trip() {
        let mut bank = SensorBank::new(100, Joules(2.0));
        assert_eq!(bank.len(), 100);
        assert!(!bank.is_empty());
        assert_eq!(bank.level(99), Joules(2.0));
        assert_eq!(bank.gen(0), 0);
        assert!(!bank.low(63) && !bank.low(64));
        bank.set_low(63, true);
        bank.set_low(64, true);
        assert!(bank.low(63) && bank.low(64) && !bank.low(62) && !bank.low(65));
        bank.set_low(63, false);
        assert!(!bank.low(63) && bank.low(64));
        assert_eq!(bank.bump_gen(7), 1);
        assert_eq!(bank.gen(7), 1);
        assert_eq!(bank.gen(8), 0);
    }

    #[test]
    fn trajectory_settles_and_clamps() {
        let mut bank = SensorBank::new(2, Joules(10.0));
        let drain = Watts(1.0);
        let t5 = Time::at(seconds(5.0));
        assert_eq!(bank.level_at(0, t5, drain), Joules(5.0));
        assert_eq!(bank.settle(0, t5, drain), Joules(5.0));
        assert_eq!(bank.level(0), Joules(5.0));
        // Clamp at empty past the depletion instant.
        let t99 = Time::at(seconds(99.0));
        assert_eq!(bank.level_at(0, t99, drain), Joules(0.0));
        // Sensor 1 was never settled; its anchor is still t=0.
        assert_eq!(bank.level_at(1, t5, drain), Joules(5.0));
    }

    #[test]
    fn death_bookkeeping_keeps_first_instants() {
        let mut bank = SensorBank::new(1, Joules(1.0));
        assert_eq!(bank.take_dead_since(0), None);
        assert_eq!(bank.first_death(0), None);
        assert!(!bank.ever_dead(0));
        let t3 = Time::at(seconds(3.0));
        let t9 = Time::at(seconds(9.0));
        bank.mark_dead_at(0, t3);
        bank.mark_dead_at(0, t9);
        assert!(bank.ever_dead(0));
        assert_eq!(bank.ever_dead_count(), 1);
        assert_eq!(bank.take_dead_since(0), Some(t3), "earlier death start is kept");
        assert_eq!(bank.take_dead_since(0), None, "take clears the running death");
        // A later death restarts dead_since but first_death is forever.
        bank.mark_dead_at(0, t9);
        assert_eq!(bank.take_dead_since(0), Some(t9));
        assert_eq!(bank.first_death(0), Some(t3));
    }

    #[test]
    fn per_sensor_footprint_is_lean() {
        // 8 (level) + 8 (updated) + 4 (gen) + 16 (death instants) + 3 bits.
        let b = SensorBank::bytes_per_sensor();
        assert!((b - 36.375).abs() < 1e-9, "bytes/sensor {b}");
    }
}

//! Bounded event trace for observability.
//!
//! The engine records every processed event into a ring buffer of fixed
//! capacity. Long horizons produce millions of events; the ring keeps the
//! *latest* `capacity` records and counts how many older ones were evicted,
//! so memory stays bounded while the tail of the run — usually where the
//! interesting failure is — stays inspectable.
//!
//! When a [`bc_obs`] recorder is active, every record is additionally
//! mirrored into it via [`emit_obs`] — *unbounded*, since the recorder
//! chooses its own retention — so engine events, battery invalidations
//! and dispatch decisions land in the same stream as planner and
//! executor events.

use crate::clock::Time;
use crate::event::Event;
use std::collections::VecDeque;

/// Mirrors one processed record into the active [`bc_obs`] recorder as a
/// `"des"`-scoped event named after [`Event::kind`], with the simulated
/// time, queue sequence number and the event's indices as fields. All
/// values are simulated quantities, so the stream is deterministic.
pub fn emit_obs(record: &TraceRecord) {
    if !bc_obs::active() {
        return;
    }
    let mut fields = Vec::with_capacity(4);
    fields.push(bc_obs::Field::new("t_s", record.at.seconds().get()));
    fields.push(bc_obs::Field::new("seq", record.seq));
    match record.event {
        Event::LowBattery { sensor, gen } | Event::Depleted { sensor, gen } => {
            fields.push(bc_obs::Field::new("sensor", sensor));
            fields.push(bc_obs::Field::new("gen", gen));
        }
        Event::Dispatch => {}
        Event::Arrival { charger, seg } | Event::ChargingComplete { charger, seg } => {
            fields.push(bc_obs::Field::new("charger", charger));
            fields.push(bc_obs::Field::new("seg", seg));
        }
        Event::Returned { charger } => {
            fields.push(bc_obs::Field::new("charger", charger));
        }
        Event::FaultDeath { sensor } => {
            fields.push(bc_obs::Field::new("sensor", sensor));
        }
    }
    bc_obs::event("des", record.event.kind(), &fields);
}

/// One processed event as it appeared on the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Instant the event fired.
    pub at: Time,
    /// Queue sequence number (total order among simultaneous events).
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

/// Fixed-capacity ring of the most recent [`TraceRecord`]s.
#[derive(Debug)]
pub struct TraceRing {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `capacity` records (0 disables tracing).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRing { buf: VecDeque::with_capacity(capacity.min(4096)), capacity, dropped: 0 }
    }

    /// Append a record, evicting the oldest if the ring is full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(record);
    }

    /// Number of records evicted (or never stored, when capacity is 0).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drain the ring into an owned vector, oldest first.
    #[must_use]
    pub fn into_vec(self) -> Vec<TraceRecord> {
        self.buf.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::seconds;

    fn rec(t: f64, seq: u64) -> TraceRecord {
        TraceRecord { at: Time::at(seconds(t)), seq, event: Event::Dispatch }
    }

    #[test]
    fn keeps_latest_records() {
        let mut ring = TraceRing::new(2);
        ring.push(rec(1.0, 0));
        ring.push(rec(2.0, 1));
        ring.push(rec(3.0, 2));
        assert_eq!(ring.dropped(), 1);
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn zero_capacity_counts_only() {
        let mut ring = TraceRing::new(0);
        ring.push(rec(1.0, 0));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn into_vec_preserves_order() {
        let mut ring = TraceRing::new(8);
        ring.push(rec(1.0, 0));
        ring.push(rec(1.0, 1));
        let v = ring.into_vec();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].seq, 0);
    }
}

//! Mobile-charger energy accounting.

use std::fmt;

use bc_units::{Joules, JoulesPerMeter, Meters, MetersPerSecond, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::params;

/// The two-part operating cost of the mobile charger: movement energy per
/// metre and charging-mode power draw per second of dwell time.
///
/// The BTO objective (Eq. 3 of the paper) is exactly
/// `move_cost * tour_length + charge_draw * total_dwell_time`, which
/// [`EnergyModel::total_energy`] computes.
///
/// # Example
///
/// ```
/// use bc_units::{Meters, Seconds};
/// use bc_wpt::EnergyModel;
///
/// let e = EnergyModel::paper_sim();
/// // 100 m of driving plus 60 s of charging:
/// let j = e.total_energy(Meters(100.0), Seconds(60.0));
/// assert!(j > e.movement_energy(Meters(100.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    move_cost: JoulesPerMeter,
    charge_draw: Watts,
}

impl EnergyModel {
    /// Creates an energy model from the movement cost (J/m) and the
    /// charging-mode draw (W).
    ///
    /// # Panics
    ///
    /// Panics unless both values are finite and non-negative.
    pub fn new(move_cost_j_per_m: f64, charge_draw_w: f64) -> Self {
        assert!(
            move_cost_j_per_m.is_finite() && move_cost_j_per_m >= 0.0,
            "movement cost must be non-negative, got {move_cost_j_per_m}"
        );
        assert!(
            charge_draw_w.is_finite() && charge_draw_w >= 0.0,
            "charging draw must be non-negative, got {charge_draw_w}"
        );
        EnergyModel {
            move_cost: JoulesPerMeter(move_cost_j_per_m),
            charge_draw: Watts(charge_draw_w),
        }
    }

    /// The simulation accounting of Section VI-A: 5.59 J/m movement and
    /// transmit power plus the 0.9 J/min overhead while charging.
    pub fn paper_sim() -> Self {
        EnergyModel::new(params::SIM_MOVE_COST_J_PER_M.0, params::SIM_CHARGE_DRAW_W.0)
    }

    /// The paper's literal accounting, charging only the 0.9 J/min
    /// overhead per dwell second. Exposed so the substitution documented
    /// in DESIGN.md §4 can be compared against the literal reading.
    pub fn paper_literal() -> Self {
        EnergyModel::new(
            params::SIM_MOVE_COST_J_PER_M.0,
            params::SIM_CHARGING_OVERHEAD_W.0,
        )
    }

    /// The testbed accounting of Section VII.
    pub fn paper_testbed() -> Self {
        EnergyModel::new(
            params::SIM_MOVE_COST_J_PER_M.0,
            params::TESTBED_SOURCE_POWER_W.0 + params::SIM_CHARGING_OVERHEAD_W.0,
        )
    }

    /// Movement cost `E_m`.
    pub fn move_cost(&self) -> JoulesPerMeter {
        self.move_cost
    }

    /// Charging-mode draw `p_c`.
    pub fn charge_draw(&self) -> Watts {
        self.charge_draw
    }

    /// Energy to drive `length` of tour.
    ///
    /// # Panics
    ///
    /// Panics if `length` is negative or not finite.
    #[inline]
    pub fn movement_energy(&self, length: Meters) -> Joules {
        assert!(
            length.is_finite() && length.0 >= 0.0,
            "tour length must be non-negative"
        );
        self.move_cost * length
    }

    /// Energy to stay in charging mode for `dwell`.
    ///
    /// # Panics
    ///
    /// Panics if `dwell` is negative or not finite.
    #[inline]
    pub fn charging_energy(&self, dwell: Seconds) -> Joules {
        assert!(
            dwell.is_finite() && dwell.0 >= 0.0,
            "dwell time must be non-negative"
        );
        self.charge_draw * dwell
    }

    /// Total operating energy for a tour of `length` with `dwell` of
    /// cumulative dwell time — the BTO objective.
    #[inline]
    pub fn total_energy(&self, length: Meters, dwell: Seconds) -> Joules {
        self.movement_energy(length) + self.charging_energy(dwell)
    }

    /// Metres of driving whose energy equals one second of charging —
    /// the exchange rate BC-OPT uses when trading tour length against
    /// dwell time. (Dimensionally `W / (J/m) = m/s`.)
    pub fn metres_per_charge_second(&self) -> MetersPerSecond {
        if self.move_cost.0 == 0.0 {
            MetersPerSecond(f64::INFINITY)
        } else {
            MetersPerSecond(self.charge_draw.0 / self.move_cost.0)
        }
    }
}

impl fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E_m = {:.3} J/m, p_c = {:.3} W",
            self.move_cost.0, self.charge_draw.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sim_values() {
        let e = EnergyModel::paper_sim();
        assert!((e.move_cost().0 - 5.59).abs() < 1e-12);
        assert!((e.charge_draw().0 - 1.015).abs() < 1e-12);
    }

    #[test]
    fn totals_add_up() {
        let e = EnergyModel::new(2.0, 4.0);
        assert_eq!(e.movement_energy(Meters(10.0)), Joules(20.0));
        assert_eq!(e.charging_energy(Seconds(3.0)), Joules(12.0));
        assert_eq!(e.total_energy(Meters(10.0), Seconds(3.0)), Joules(32.0));
    }

    #[test]
    fn literal_accounting_is_cheaper_per_second() {
        let lit = EnergyModel::paper_literal();
        let sim = EnergyModel::paper_sim();
        assert!(lit.charge_draw() < sim.charge_draw());
        assert_eq!(lit.move_cost(), sim.move_cost());
    }

    #[test]
    fn exchange_rate() {
        let e = EnergyModel::new(2.0, 4.0);
        assert_eq!(e.metres_per_charge_second(), MetersPerSecond(2.0));
        let free_move = EnergyModel::new(0.0, 4.0);
        assert_eq!(
            free_move.metres_per_charge_second(),
            MetersPerSecond(f64::INFINITY)
        );
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn negative_move_cost_panics() {
        let _ = EnergyModel::new(-1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "tour length must be non-negative")]
    fn negative_length_panics() {
        let _ = EnergyModel::paper_sim().movement_energy(Meters(-1.0));
    }
}

//! Alternative attenuation laws.
//!
//! The paper notes its scheme "can extend to other charging models with
//! the minimum modification". [`Law`] makes that concrete: the planners
//! only ever ask for received power as a monotone non-increasing
//! function of distance, so any such law slots in. Three are provided:
//!
//! * [`Law::Quadratic`] — the paper's Eq. 1 (`alpha/(d+beta)^2`);
//! * [`Law::Linear`] — the linear fall-off used by He et al.'s energy
//!   provisioning work, `p0 - slope * d`, clamped at zero;
//! * [`Law::Table`] — piecewise-linear interpolation of measured
//!   (distance, power) samples, the form raw testbed calibrations take.

use bc_units::Meters;
use serde::{Deserialize, Serialize};

/// Maximum number of calibration points a [`Law::Table`] holds.
pub const TABLE_MAX_POINTS: usize = 16;

/// A normalized attenuation law: received power per watt of source power
/// as a function of distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)] // Copy semantics across the planner outweigh the table variant's size
pub enum Law {
    /// The paper's quadratic model `alpha / (d + beta)^2`.
    Quadratic {
        /// Friis-fit numerator constant (m^2).
        alpha: f64,
        /// Short-distance adjustment (m).
        beta: f64,
    },
    /// Linear fall-off `max(p0 - slope * d, 0)`.
    Linear {
        /// Normalized received power at contact (1/W of source).
        p0: f64,
        /// Decay per metre.
        slope: f64,
    },
    /// Piecewise-linear interpolation of `(distance, normalized power)`
    /// samples; zero beyond the last sample.
    Table {
        /// Calibration points, sorted by distance, first `len` valid.
        points: [(f64, f64); TABLE_MAX_POINTS],
        /// Number of valid points.
        len: usize,
    },
}

impl Law {
    /// Normalized received power (per watt of source) at distance `d`.
    ///
    /// Monotone non-increasing in `d`, and zero wherever the law has no
    /// support.
    pub fn gain(&self, d: Meters) -> f64 {
        let d = d.0;
        match *self {
            Law::Quadratic { alpha, beta } => alpha / ((d + beta) * (d + beta)),
            Law::Linear { p0, slope } => (p0 - slope * d).max(0.0),
            Law::Table { points, len } => {
                let pts = &points[..len];
                if pts.is_empty() || d < pts[0].0 {
                    return pts.first().map_or(0.0, |&(_, p)| p);
                }
                for w in pts.windows(2) {
                    let ((d0, p0), (d1, p1)) = (w[0], w[1]);
                    if d <= d1 {
                        let t = if d1 > d0 { (d - d0) / (d1 - d0) } else { 0.0 };
                        return p0 + (p1 - p0) * t;
                    }
                }
                0.0
            }
        }
    }

    /// The largest distance at which the gain still reaches `g`, or
    /// `None` when even contact falls short.
    pub fn max_distance_for_gain(&self, g: f64) -> Option<Meters> {
        assert!(g > 0.0 && g.is_finite(), "gain threshold must be positive");
        match *self {
            Law::Quadratic { alpha, beta } => {
                let d = (alpha / g).sqrt() - beta;
                (d >= 0.0).then_some(Meters(d))
            }
            Law::Linear { p0, slope } => {
                if p0 < g {
                    None
                } else if slope <= 0.0 {
                    Some(Meters(f64::INFINITY))
                } else {
                    Some(Meters((p0 - g) / slope))
                }
            }
            Law::Table { points, len } => {
                let pts = &points[..len];
                if pts.first().is_none_or(|&(_, p)| p < g) {
                    return None;
                }
                // Walk segments; gains are non-increasing.
                let mut best = pts[0].0;
                for w in pts.windows(2) {
                    let ((d0, p0), (d1, p1)) = (w[0], w[1]);
                    if p1 >= g {
                        best = d1;
                    } else {
                        if p0 > p1 {
                            let t = (p0 - g) / (p0 - p1);
                            best = d0 + (d1 - d0) * t.clamp(0.0, 1.0);
                        }
                        return Some(Meters(best));
                    }
                }
                Some(Meters(best))
            }
        }
    }

    /// Validates the law's invariants (positive support, monotone
    /// non-increasing), returning a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Law::Quadratic { alpha, beta } => {
                if !(alpha.is_finite() && alpha > 0.0) {
                    return Err(format!("alpha must be positive, got {alpha}"));
                }
                if !(beta.is_finite() && beta > 0.0) {
                    return Err(format!("beta must be positive, got {beta}"));
                }
                Ok(())
            }
            Law::Linear { p0, slope } => {
                if !(p0.is_finite() && p0 > 0.0) {
                    return Err(format!("p0 must be positive, got {p0}"));
                }
                if !(slope.is_finite() && slope >= 0.0) {
                    return Err(format!("slope must be non-negative, got {slope}"));
                }
                Ok(())
            }
            Law::Table { points, len } => {
                if len == 0 || len > TABLE_MAX_POINTS {
                    return Err(format!("table must have 1..={TABLE_MAX_POINTS} points"));
                }
                let pts = &points[..len];
                for &(d, p) in pts {
                    if !d.is_finite() || d < 0.0 || !p.is_finite() || p < 0.0 {
                        return Err(format!("bad table point ({d}, {p})"));
                    }
                }
                if pts[0].1 <= 0.0 {
                    return Err("table gain at first point must be positive".into());
                }
                for w in pts.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err("table distances must be strictly increasing".into());
                    }
                    if w[1].1 > w[0].1 {
                        return Err("table gains must be non-increasing".into());
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(points: &[(f64, f64)]) -> Law {
        let mut arr = [(0.0, 0.0); TABLE_MAX_POINTS];
        arr[..points.len()].copy_from_slice(points);
        Law::Table {
            points: arr,
            len: points.len(),
        }
    }

    #[test]
    fn quadratic_matches_formula() {
        let law = Law::Quadratic { alpha: 36.0, beta: 30.0 };
        assert!((law.gain(Meters(0.0)) - 0.04).abs() < 1e-12);
        assert!((law.gain(Meters(10.0)) - 36.0 / 1600.0).abs() < 1e-12);
    }

    #[test]
    fn linear_clamps_at_zero() {
        let law = Law::Linear { p0: 0.1, slope: 0.01 };
        assert_eq!(law.gain(Meters(0.0)), 0.1);
        assert!((law.gain(Meters(5.0)) - 0.05).abs() < 1e-12);
        assert_eq!(law.gain(Meters(20.0)), 0.0);
    }

    #[test]
    fn table_interpolates_and_cuts_off() {
        let law = table(&[(0.0, 0.1), (1.0, 0.05), (3.0, 0.01)]);
        assert_eq!(law.gain(Meters(0.0)), 0.1);
        assert!((law.gain(Meters(0.5)) - 0.075).abs() < 1e-12);
        assert!((law.gain(Meters(2.0)) - 0.03).abs() < 1e-12);
        assert_eq!(law.gain(Meters(5.0)), 0.0);
    }

    #[test]
    fn all_laws_monotone_non_increasing() {
        let laws = [
            Law::Quadratic { alpha: 36.0, beta: 30.0 },
            Law::Linear { p0: 0.2, slope: 0.004 },
            table(&[(0.0, 0.2), (2.0, 0.08), (10.0, 0.0)]),
        ];
        for law in laws {
            let mut last = f64::INFINITY;
            for i in 0..200 {
                let g = law.gain(Meters(f64::from(i) * 0.5));
                assert!(g <= last + 1e-12, "{law:?} increased at step {i}");
                last = g;
            }
        }
    }

    #[test]
    fn max_distance_round_trips() {
        let laws = [
            Law::Quadratic { alpha: 36.0, beta: 30.0 },
            Law::Linear { p0: 0.2, slope: 0.004 },
            table(&[(0.0, 0.2), (2.0, 0.08), (10.0, 0.01)]),
        ];
        for law in laws {
            let g = law.gain(Meters(1.5));
            if g > 0.0 {
                let d = law.max_distance_for_gain(g).unwrap();
                assert!((law.gain(d) - g).abs() < 1e-9, "{law:?}: {} vs {}", law.gain(d), g);
            }
            assert!(law.max_distance_for_gain(1e9).is_none());
        }
    }

    #[test]
    fn validation_catches_bad_tables() {
        assert!(table(&[(0.0, 0.1), (1.0, 0.2)]).validate().is_err()); // increasing gain
        assert!(table(&[(1.0, 0.1), (1.0, 0.05)]).validate().is_err()); // duplicate distance
        assert!(table(&[(0.0, 0.0)]).validate().is_err()); // zero at contact
        assert!(table(&[(0.0, 0.1), (2.0, 0.05)]).validate().is_ok());
        assert!(Law::Quadratic { alpha: 0.0, beta: 1.0 }.validate().is_err());
        assert!(Law::Linear { p0: 0.1, slope: -1.0 }.validate().is_err());
    }
}

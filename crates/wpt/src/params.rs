//! Named parameter sets from the paper.
//!
//! Two environments appear in the evaluation:
//!
//! * **Simulation** (Section VI-A): a 1000 m x 1000 m field,
//!   `alpha = 36`, `beta = 30` (fitted from the experiments of Fu et al.,
//!   INFOCOM'13), a 2 J per-sensor charging requirement, movement cost
//!   5.59 J/m (from Wang et al., SECON'14) and a 0.9 J/min auxiliary draw
//!   while the charger operates in charging mode.
//! * **Testbed** (Section VII): a Powercast TX91501 transmitter (3 W RF at
//!   915 MHz, wavelength 0.33 m) on a robot car moving at 0.3 m/s, six
//!   P2110-equipped sensors in a 5 m x 5 m office, per-sensor requirement
//!   4 mJ.
//!
//! Dimensioned constants carry their `bc-units` newtype; the raw law-fit
//! coefficients (`alpha`, `beta`) stay `f64` because they parameterize
//! [`crate::law::Law`] directly.

use bc_units::{Joules, JoulesPerMeter, Meters, MetersPerSecond, Watts};

/// Friis-fit numerator constant `alpha` used in the simulations (m^2).
pub const SIM_ALPHA: f64 = 36.0;

/// Friis short-distance adjustment `beta` used in the simulations (m).
pub const SIM_BETA: f64 = 30.0;

/// Per-sensor charging requirement `delta` in the simulations.
pub const SIM_DELTA_J: Joules = Joules(2.0);

/// Mobile-charger movement cost `E_m`.
pub const SIM_MOVE_COST_J_PER_M: JoulesPerMeter = JoulesPerMeter(5.59);

/// RF source power of the charger. The paper's testbed transmitter
/// (TX91501) outputs 3 W, which is also the `p_c` entering Eq. 1.
pub const SIM_SOURCE_POWER_W: Watts = Watts(3.0);

/// Effective source multiplier for the simulation charging model.
///
/// The `alpha = 36, beta = 30` fit is taken from the WISP experiments of
/// Fu et al. (INFOCOM'13), where the measured quantity is the *received*
/// power itself: `p_r(d) = 36/(d + 30)^2` watts already absorbs the
/// reader's transmit power (a 2 J recharge then takes 50 s at contact and
/// ~89 s at 10 m, the same order as the WISP charging delays the paper
/// quotes). Multiplying by a further 3 W would make charging three times
/// too cheap and erase the interior-optimal bundle radius of Figs. 6(b)
/// and 14. See DESIGN.md §4.
pub const SIM_FITTED_SOURCE_W: Watts = Watts(1.0);

/// Auxiliary electronics draw while the charger operates in charging mode:
/// the paper's "0.9 J/min (5 mA x 3 V x 60 s)".
pub const SIM_CHARGING_OVERHEAD_W: Watts = Watts(0.9 / 60.0);

/// Total power the charger draws per second of dwell time.
///
/// The draw must equal the charging model's source power (plus the
/// auxiliary overhead): in Eq. 3 the same `p_c` drives both the received
/// power `p_r = alpha/(d+beta)^2 * p_c` and the per-second charging cost
/// `p_c * t_i`, which makes the charging *energy* for a sensor equal to
/// `delta * (d+beta)^2 / alpha` joules regardless of the transmit power —
/// the demanded energy divided by the link efficiency. The simulation
/// model folds the transmit power into the fitted `alpha`
/// ([`SIM_FITTED_SOURCE_W`] = 1 W), so the matching draw is 1 W plus the
/// 0.9 J/min overhead. See DESIGN.md §4.
pub const SIM_CHARGE_DRAW_W: Watts = Watts(SIM_FITTED_SOURCE_W.0 + SIM_CHARGING_OVERHEAD_W.0);

/// Side length of the simulated deployment field.
pub const SIM_FIELD_SIDE_M: Meters = Meters(1000.0);

/// Testbed transmit power — Powercast TX91501.
pub const TESTBED_SOURCE_POWER_W: Watts = Watts(3.0);

/// Testbed RF wavelength at the 915 MHz charging frequency.
pub const TESTBED_WAVELENGTH_M: Meters = Meters(0.33);

/// Testbed robot-car speed.
pub const TESTBED_CAR_SPEED_M_PER_S: MetersPerSecond = MetersPerSecond(0.3);

/// Testbed per-sensor energy requirement — 4 mJ, from the fast
/// interference-aware scheduling experiments the paper cites.
pub const TESTBED_DELTA_J: Joules = Joules(0.004);

/// Testbed field side length.
pub const TESTBED_FIELD_SIDE_M: Meters = Meters(5.0);

/// Friis-fit `alpha` for the testbed's metre-scale distances.
///
/// Physical Friis at 915 MHz (wavelength 0.33 m) with the TX91501's
/// transmit gain, the P2110 dipole's receive gain and a ~50 % rectifier
/// gives a received power around 2 mW at 1 m from the 3 W source:
/// `p_r(1 m) = alpha / (1 + beta)^2 * 3 ~ 2 mW` with `alpha = 1.15e-3`.
/// The quadratic fall-off across the 5 m room is then steep enough that
/// parking far from a sensor costs real dwell time, matching the
/// moderate (not total) tour-shortening gains of Fig. 16.
pub const TESTBED_ALPHA: f64 = 1.15e-3;

/// Friis short-distance adjustment for the testbed (m).
pub const TESTBED_BETA: f64 = 0.3;

/// The six sensor coordinates of the testbed (m), as published.
pub const TESTBED_SENSOR_COORDS: [(f64, f64); 6] = [
    (1.0, 1.0),
    (1.0, 3.0),
    (1.0, 4.0),
    (2.0, 4.0),
    (4.0, 4.0),
    (4.0, 1.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_published_rate() {
        // 0.9 J per minute.
        assert!((SIM_CHARGING_OVERHEAD_W.0 * 60.0 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn draw_matches_fitted_source_plus_overhead() {
        assert!(
            (SIM_CHARGE_DRAW_W - SIM_FITTED_SOURCE_W - SIM_CHARGING_OVERHEAD_W)
                .abs()
                .0
                < 1e-12
        );
        // The invariance argument: with the draw tied to the model's
        // source power, charging energy is delta*(d+beta)^2/alpha
        // regardless of transmit power.
        const { assert!(SIM_CHARGE_DRAW_W.0 > SIM_FITTED_SOURCE_W.0) }; // overhead is positive
    }

    #[test]
    fn testbed_coords_inside_field() {
        for (x, y) in TESTBED_SENSOR_COORDS {
            assert!((0.0..=TESTBED_FIELD_SIDE_M.0).contains(&x));
            assert!((0.0..=TESTBED_FIELD_SIDE_M.0).contains(&y));
        }
    }
}

//! Wireless power transfer model for bundle charging.
//!
//! Implements the paper's empirical WISP-reader charging model (Eq. 1)
//!
//! ```text
//! p_r = alpha / (d + beta)^2 * p_src
//! ```
//!
//! together with the mobile charger's two-part energy accounting: movement
//! energy (`E_m` joules per metre of tour) and charging energy (`p_c`
//! joules per second while parked and transmitting).
//!
//! All quantities are `bc-units` newtypes — distances are [`Meters`],
//! energies [`Joules`], dwell times [`Seconds`], powers [`Watts`] — so a
//! metre/joule mix-up is a compile error, not a silently wrong figure.
//!
//! # Example
//!
//! ```
//! use bc_units::{Joules, Meters, Seconds};
//! use bc_wpt::{ChargingModel, EnergyModel};
//!
//! let model = ChargingModel::paper_sim();
//! // Received power decays quadratically with distance.
//! assert!(model.received_power(Meters(0.0)) > model.received_power(Meters(10.0)));
//!
//! // Time to deliver 2 J to a sensor 10 m away:
//! let t = model.charge_time(Meters(10.0), Joules(2.0));
//! assert!(t > Seconds(0.0));
//!
//! let energy = EnergyModel::paper_sim();
//! let total = energy.movement_energy(Meters(100.0)) + energy.charging_energy(t);
//! assert!(total > Joules(0.0));
//! ```

#![warn(missing_docs)]

pub mod energy;
pub mod friis;
pub mod law;
pub mod params;
pub mod table;

pub use bc_units::{Joules, JoulesPerMeter, Meters, Meters2, MetersPerSecond, Seconds, Watts};
pub use energy::EnergyModel;
pub use friis::ChargingModel;
pub use law::Law;
pub use table::ReceivePowerTable;

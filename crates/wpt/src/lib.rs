//! Wireless power transfer model for bundle charging.
//!
//! Implements the paper's empirical WISP-reader charging model (Eq. 1)
//!
//! ```text
//! p_r = alpha / (d + beta)^2 * p_src
//! ```
//!
//! together with the mobile charger's two-part energy accounting: movement
//! energy (`E_m` joules per metre of tour) and charging energy (`p_c`
//! joules per second while parked and transmitting).
//!
//! # Example
//!
//! ```
//! use bc_wpt::{ChargingModel, EnergyModel};
//!
//! let model = ChargingModel::paper_sim();
//! // Received power decays quadratically with distance.
//! assert!(model.received_power(0.0) > model.received_power(10.0));
//!
//! // Time to deliver 2 J to a sensor 10 m away:
//! let t = model.charge_time(10.0, 2.0);
//! assert!(t > 0.0);
//!
//! let energy = EnergyModel::paper_sim();
//! let total = energy.movement_energy(100.0) + energy.charging_energy(t);
//! assert!(total > 0.0);
//! ```

#![warn(missing_docs)]

pub mod energy;
pub mod friis;
pub mod law;
pub mod params;

pub use energy::EnergyModel;
pub use friis::ChargingModel;
pub use law::Law;

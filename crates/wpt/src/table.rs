//! Precomputed per-sensor receive-power artifacts.
//!
//! The SC planner and the dwell-time checks evaluate the charging law at
//! contact distance (`d = 0`) once per sensor. [`ReceivePowerTable`]
//! hoists those evaluations into a single pass so a shared planning
//! context can hand the same table to every stage instead of re-deriving
//! it per planner.

use bc_units::{Joules, Meters, Seconds, Watts};

use crate::friis::ChargingModel;

/// Per-sensor receive-power table for a fixed [`ChargingModel`].
///
/// Stores the contact received power (the law evaluated at `d = 0`) and,
/// for each sensor demand, the contact dwell time `t_i = delta_i / p_r(0)`
/// (Eq. 1 at zero distance). Entries are computed with exactly the same
/// calls a planner would make (`received_power` / `charge_time`), so a
/// plan built from the table is bit-identical to one built directly from
/// the model.
///
/// # Example
///
/// ```
/// use bc_units::{Joules, Meters};
/// use bc_wpt::{ChargingModel, ReceivePowerTable};
///
/// let model = ChargingModel::paper_sim();
/// let table = ReceivePowerTable::new(&model, &[Joules(2.0), Joules(4.0)]);
/// assert_eq!(table.len(), 2);
/// assert_eq!(table.contact_dwell(0), model.charge_time(Meters(0.0), Joules(2.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivePowerTable {
    contact_power: Watts,
    contact_dwell: Vec<Seconds>,
}

impl ReceivePowerTable {
    /// Builds the table for the given per-sensor demands (index order).
    ///
    /// # Panics
    ///
    /// Panics if any demand is negative or not finite (same contract as
    /// [`ChargingModel::charge_time`]).
    pub fn new(model: &ChargingModel, demands: &[Joules]) -> Self {
        let contact = Meters(0.0);
        ReceivePowerTable {
            contact_power: model.received_power(contact),
            contact_dwell: demands
                .iter()
                .map(|&d| model.charge_time(contact, d))
                .collect(),
        }
    }

    /// Number of sensors in the table.
    pub fn len(&self) -> usize {
        self.contact_dwell.len()
    }

    /// `true` when the table covers no sensors.
    pub fn is_empty(&self) -> bool {
        self.contact_dwell.is_empty()
    }

    /// Received power at contact distance (`d = 0`).
    pub fn contact_power(&self) -> Watts {
        self.contact_power
    }

    /// Dwell time to satisfy sensor `i`'s demand at contact distance.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn contact_dwell(&self, i: usize) -> Seconds {
        self.contact_dwell[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_model_calls() {
        let model = ChargingModel::paper_sim();
        let demands = [Joules(2.0), Joules(0.5), Joules(0.0)];
        let table = ReceivePowerTable::new(&model, &demands);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        assert_eq!(table.contact_power(), model.received_power(Meters(0.0)));
        for (i, &d) in demands.iter().enumerate() {
            assert_eq!(table.contact_dwell(i), model.charge_time(Meters(0.0), d));
        }
    }

    #[test]
    fn empty_demands_give_empty_table() {
        let table = ReceivePowerTable::new(&ChargingModel::paper_sim(), &[]);
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
    }

    #[test]
    #[should_panic(expected = "energy must be non-negative")]
    fn negative_demand_panics() {
        let _ = ReceivePowerTable::new(&ChargingModel::paper_sim(), &[Joules(-1.0)]);
    }
}

//! The quadratic-attenuation charging model (Eq. 1 of the paper).

use std::fmt;

use bc_units::{Joules, Meters, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::law::Law;
use crate::params;

/// The wireless charging model: an attenuation [`Law`] scaled by the
/// charger's RF source power.
///
/// The default law is the paper's empirical WISP-reader fit
/// `p_r(d) = alpha / (d + beta)^2 * p_src`, where `alpha` folds together
/// the antenna gains, wavelength, polarization loss and rectifier
/// efficiency of the Friis equation and `beta` adjusts it for short
/// distances. Linear and table-calibrated laws are available through
/// [`ChargingModel::linear`] and [`ChargingModel::from_table`] — the
/// planners only require monotone non-increasing received power.
///
/// # Example
///
/// ```
/// use bc_units::Meters;
/// use bc_wpt::ChargingModel;
///
/// let m = ChargingModel::paper_sim();
/// let near = m.received_power(Meters(1.0));
/// let far = m.received_power(Meters(20.0));
/// assert!(near > far);
/// // Quadratic: moving from d to 2d+beta more than quarters the power.
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargingModel {
    law: Law,
    source_power: Watts,
}

impl ChargingModel {
    /// Creates a charging model from the raw fit constants (`alpha` in
    /// m², `beta` in m, `source_power` in W).
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 0`, `beta > 0` and `source_power > 0` and
    /// all are finite.
    pub fn new(alpha: f64, beta: f64, source_power: f64) -> Self {
        ChargingModel::with_law(Law::Quadratic { alpha, beta }, source_power)
    }

    /// Creates a model from an arbitrary attenuation law.
    ///
    /// # Panics
    ///
    /// Panics if the law fails validation or `source_power` is not
    /// positive and finite.
    pub fn with_law(law: Law, source_power: f64) -> Self {
        if let Err(reason) = law.validate() {
            panic!("invalid attenuation law: {reason}");
        }
        assert!(
            source_power.is_finite() && source_power > 0.0,
            "source power must be positive, got {source_power}"
        );
        ChargingModel {
            law,
            source_power: Watts(source_power),
        }
    }

    /// Creates a linear fall-off model `max(p0 - slope * d, 0) * p_src`
    /// (the He et al. energy-provisioning law).
    pub fn linear(p0: f64, slope: f64, source_power: f64) -> Self {
        ChargingModel::with_law(Law::Linear { p0, slope }, source_power)
    }

    /// Creates a model from measured `(distance, normalized power)`
    /// calibration points (piecewise-linear, zero past the last point).
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, longer than
    /// [`crate::law::TABLE_MAX_POINTS`], not sorted by distance, or not
    /// monotone non-increasing in power.
    pub fn from_table(points: &[(f64, f64)], source_power: f64) -> Self {
        assert!(
            points.len() <= crate::law::TABLE_MAX_POINTS,
            "at most {} table points supported",
            crate::law::TABLE_MAX_POINTS
        );
        let mut arr = [(0.0, 0.0); crate::law::TABLE_MAX_POINTS];
        arr[..points.len()].copy_from_slice(points);
        ChargingModel::with_law(
            Law::Table {
                points: arr,
                len: points.len(),
            },
            source_power,
        )
    }

    /// The simulation parameters of Section VI-A: the fitted
    /// `p_r(d) = 36/(d + 30)^2` watts. The fit already absorbs the
    /// reader's transmit power, so the source multiplier is 1
    /// (see [`params::SIM_FITTED_SOURCE_W`]).
    pub fn paper_sim() -> Self {
        ChargingModel::new(
            params::SIM_ALPHA,
            params::SIM_BETA,
            params::SIM_FITTED_SOURCE_W.0,
        )
    }

    /// The testbed parameters of Section VII (Powercast TX91501).
    pub fn paper_testbed() -> Self {
        ChargingModel::new(
            params::TESTBED_ALPHA,
            params::TESTBED_BETA,
            params::TESTBED_SOURCE_POWER_W.0,
        )
    }

    /// The attenuation law.
    pub fn law(&self) -> Law {
        self.law
    }

    /// The `alpha` constant, if the law is quadratic.
    pub fn alpha(&self) -> Option<f64> {
        match self.law {
            Law::Quadratic { alpha, .. } => Some(alpha),
            _ => None,
        }
    }

    /// The `beta` short-distance adjustment, if the law is quadratic.
    pub fn beta(&self) -> Option<f64> {
        match self.law {
            Law::Quadratic { beta, .. } => Some(beta),
            _ => None,
        }
    }

    /// The RF source power `p_src`.
    pub fn source_power(&self) -> Watts {
        self.source_power
    }

    /// Power received by a sensor at distance `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative or not finite.
    #[inline]
    pub fn received_power(&self, d: Meters) -> Watts {
        assert!(d.is_finite() && d.0 >= 0.0, "distance must be non-negative");
        self.law.gain(d) * self.source_power
    }

    /// Time to deliver `energy` to a sensor at distance `d`.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative or `d` invalid.
    #[inline]
    pub fn charge_time(&self, d: Meters, energy: Joules) -> Seconds {
        assert!(
            energy.is_finite() && energy.0 >= 0.0,
            "energy must be non-negative"
        );
        energy / self.received_power(d)
    }

    /// Energy delivered to a sensor at distance `d` over `dwell`.
    #[inline]
    pub fn delivered_energy(&self, d: Meters, dwell: Seconds) -> Joules {
        assert!(
            dwell.is_finite() && dwell.0 >= 0.0,
            "duration must be non-negative"
        );
        self.received_power(d) * dwell
    }

    /// The largest distance at which the received power still reaches
    /// `power`, or `None` when even `d = 0` is insufficient.
    pub fn max_distance_for_power(&self, power: Watts) -> Option<Meters> {
        assert!(power.is_finite() && power.0 > 0.0, "power must be positive");
        self.law.max_distance_for_gain(power / self.source_power)
    }

    /// End-to-end efficiency at distance `d` (received / source power,
    /// dimensionless).
    pub fn efficiency(&self, d: Meters) -> f64 {
        self.received_power(d) / self.source_power
    }
}

impl fmt::Display for ChargingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.law {
            Law::Quadratic { alpha, beta } => write!(
                f,
                "p_r(d) = {:.3}/(d + {:.3})^2 * {:.3} W",
                alpha, beta, self.source_power.0
            ),
            Law::Linear { p0, slope } => write!(
                f,
                "p_r(d) = max({:.4} - {:.4} d, 0) * {:.3} W",
                p0, slope, self.source_power.0
            ),
            Law::Table { len, .. } => {
                write!(
                    f,
                    "p_r(d): {len}-point table * {:.3} W",
                    self.source_power.0
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: f64) -> Meters {
        Meters(v)
    }

    #[test]
    fn quadratic_decay() {
        let model = ChargingModel::paper_sim();
        // p(d) * (d+beta)^2 is constant.
        let k0 = model.received_power(m(0.0)).0 * 30.0 * 30.0;
        let k10 = model.received_power(m(10.0)).0 * 40.0 * 40.0;
        assert!((k0 - k10).abs() < 1e-9);
    }

    #[test]
    fn paper_sim_magnitudes() {
        let model = ChargingModel::paper_sim();
        // At contact: 36/900 = 0.04 W.
        assert!((model.received_power(m(0.0)).0 - 0.04).abs() < 1e-12);
        // 2 J at contact takes 50 s (the WISP-scale charging delay).
        assert!((model.charge_time(m(0.0), Joules(2.0)).0 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn charge_time_scales_with_energy_and_distance() {
        let model = ChargingModel::paper_sim();
        assert!(model.charge_time(m(0.0), Joules(2.0)) < model.charge_time(m(10.0), Joules(2.0)));
        assert!(
            (model.charge_time(m(5.0), Joules(4.0)).0
                - 2.0 * model.charge_time(m(5.0), Joules(2.0)).0)
                .abs()
                < 1e-9
        );
        assert_eq!(model.charge_time(m(5.0), Joules(0.0)), Seconds(0.0));
    }

    #[test]
    fn delivered_energy_inverts_charge_time() {
        let model = ChargingModel::paper_sim();
        let t = model.charge_time(m(12.0), Joules(2.0));
        assert!((model.delivered_energy(m(12.0), t).0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn max_distance_for_power_round_trip() {
        let model = ChargingModel::paper_sim();
        let p = model.received_power(m(25.0));
        let d = model.max_distance_for_power(p).unwrap();
        assert!((d.0 - 25.0).abs() < 1e-9);
        // Impossible power level.
        assert!(model.max_distance_for_power(Watts(1e9)).is_none());
    }

    #[test]
    fn efficiency_below_unity() {
        let model = ChargingModel::paper_sim();
        assert!(model.efficiency(m(0.0)) < 1.0);
        assert!(model.efficiency(m(100.0)) < model.efficiency(m(1.0)));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn invalid_alpha_panics() {
        let _ = ChargingModel::new(0.0, 30.0, 3.0);
    }

    #[test]
    fn linear_law_end_to_end() {
        let model = ChargingModel::linear(0.1, 0.01, 2.0);
        assert!((model.received_power(m(0.0)).0 - 0.2).abs() < 1e-12);
        assert!((model.received_power(m(5.0)).0 - 0.1).abs() < 1e-12);
        assert_eq!(model.received_power(m(20.0)), Watts(0.0));
        assert!((model.charge_time(m(5.0), Joules(1.0)).0 - 10.0).abs() < 1e-9);
        assert!(model.alpha().is_none());
    }

    #[test]
    fn table_law_end_to_end() {
        let model = ChargingModel::from_table(&[(0.0, 0.04), (10.0, 0.01)], 1.0);
        assert!((model.received_power(m(5.0)).0 - 0.025).abs() < 1e-12);
        let d = model.max_distance_for_power(Watts(0.02)).unwrap();
        assert!((model.received_power(d).0 - 0.02).abs() < 1e-9);
        assert!(!format!("{model}").is_empty());
    }

    #[test]
    fn quadratic_accessors_present() {
        let model = ChargingModel::paper_sim();
        assert_eq!(model.alpha(), Some(36.0));
        assert_eq!(model.beta(), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "distance must be non-negative")]
    fn negative_distance_panics() {
        let _ = ChargingModel::paper_sim().received_power(m(-1.0));
    }
}

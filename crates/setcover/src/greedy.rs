//! Greedy set cover — the selection loop of the paper's Algorithm 2.

use crate::{BitSet, Instance};

/// Greedy minimum set cover: repeatedly selects the set covering the most
/// still-uncovered elements until the universe is covered.
///
/// Theorem 2 of the paper: this is a `ln n + 1` approximation of the
/// optimal cover. Ties are broken by lowest set index, which makes the
/// result deterministic.
///
/// Returns the indices of the selected sets, in selection order.
pub fn greedy_cover(inst: &Instance) -> Vec<usize> {
    let mut uncovered = BitSet::full(inst.universe());
    let mut selected = Vec::new();
    let mut used = vec![false; inst.num_sets()];
    while !uncovered.is_empty() {
        let mut best = usize::MAX;
        let mut best_gain = 0usize;
        for (i, s) in inst.sets().iter().enumerate() {
            if used[i] {
                continue;
            }
            let gain = s.intersection_count(&uncovered);
            if gain > best_gain {
                best_gain = gain;
                best = i;
            }
        }
        // The instance is validated coverable, so a positive-gain set
        // always exists while anything is uncovered.
        debug_assert!(best != usize::MAX, "validated instance ran out of sets");
        uncovered.subtract(&inst.sets()[best]);
        used[best] = true;
        selected.push(best);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(universe: usize, families: &[&[usize]]) -> Instance {
        Instance::new(
            universe,
            families
                .iter()
                .map(|f| BitSet::from_indices(universe, f))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn picks_largest_first() {
        let i = inst(5, &[&[0], &[0, 1, 2], &[3, 4], &[4]]);
        let sel = greedy_cover(&i);
        assert_eq!(sel[0], 1); // the size-3 set first
        assert!(i.is_cover(&sel));
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn covers_with_singletons_when_necessary() {
        let i = inst(4, &[&[0], &[1], &[2], &[3]]);
        let sel = greedy_cover(&i);
        assert_eq!(sel.len(), 4);
        assert!(i.is_cover(&sel));
    }

    #[test]
    fn classic_greedy_suboptimal_instance() {
        // Universe {0..5}; optimal = {0,1,2},{3,4,5} (2 sets) but greedy
        // may be lured by a size-4 set. Greedy stays within ln n + 1.
        let i = inst(6, &[&[0, 1, 2], &[3, 4, 5], &[1, 2, 3, 4]]);
        let sel = greedy_cover(&i);
        assert!(i.is_cover(&sel));
        assert!(sel.len() <= 3);
    }

    #[test]
    fn deterministic_tie_break() {
        let i = inst(2, &[&[0, 1], &[0, 1]]);
        assert_eq!(greedy_cover(&i), vec![0]);
    }

    #[test]
    fn empty_universe_selects_nothing() {
        let i = Instance::new(0, vec![]).unwrap();
        assert!(greedy_cover(&i).is_empty());
    }

    #[test]
    fn never_selects_a_set_twice() {
        let i = inst(5, &[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[0, 4]]);
        let sel = greedy_cover(&i);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), sel.len());
        assert!(i.is_cover(&sel));
    }
}

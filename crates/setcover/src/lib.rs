//! Set-cover substrate for optimal bundle generation.
//!
//! The paper's Optimal Bundle Generation (OBG) problem is exactly minimum
//! set cover over the family of feasible charging bundles (Theorem 1).
//! This crate provides:
//!
//! * [`BitSet`] — a compact dynamic bitset used to represent candidate
//!   bundles over the sensor universe;
//! * [`Instance`] — a validated set-cover instance;
//! * [`greedy_cover`] — the classical greedy algorithm with the
//!   `ln n + 1` guarantee the paper proves for Algorithm 2;
//! * [`exact_cover`] — branch-and-bound exact minimum cover, the
//!   "Optimal" baseline of Fig. 11.
//!
//! # Example
//!
//! ```
//! use bc_setcover::{BitSet, Instance, greedy_cover, exact_cover};
//!
//! let sets = vec![
//!     BitSet::from_indices(4, &[0, 1]),
//!     BitSet::from_indices(4, &[1, 2]),
//!     BitSet::from_indices(4, &[2, 3]),
//!     BitSet::from_indices(4, &[0, 1, 2]),
//! ];
//! let inst = Instance::new(4, sets).unwrap();
//! let greedy = greedy_cover(&inst);
//! let exact = exact_cover(&inst, None).unwrap();
//! assert!(exact.len() <= greedy.len());
//! assert_eq!(exact.len(), 2); // {0,1,2} + {2,3}
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod exact;
pub mod greedy;
pub mod instance;

pub use bitset::BitSet;
pub use exact::exact_cover;
pub use greedy::greedy_cover;
pub use instance::{Instance, InstanceError};

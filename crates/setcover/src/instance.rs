//! Validated set-cover instances.

use std::fmt;

use crate::BitSet;

/// A set-cover instance: a universe `0..universe` and a family of subsets.
///
/// Constructed through [`Instance::new`], which validates that the family
/// actually covers the universe — an uncoverable OBG instance would mean a
/// sensor belongs to no candidate bundle, which the bundle generator never
/// produces (every sensor forms at least a singleton bundle).
#[derive(Debug, Clone)]
pub struct Instance {
    universe: usize,
    sets: Vec<BitSet>,
}

/// Error building a set-cover [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// A set is defined over a different universe size.
    UniverseMismatch {
        /// Index of the offending set.
        set: usize,
        /// Universe the set was built over.
        got: usize,
        /// Universe the instance requires.
        expected: usize,
    },
    /// The union of all sets misses at least one element.
    Uncoverable {
        /// The lowest uncovered element.
        element: usize,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::UniverseMismatch { set, got, expected } => write!(
                f,
                "set {set} is over universe {got}, instance expects {expected}"
            ),
            InstanceError::Uncoverable { element } => {
                write!(f, "element {element} is not covered by any set")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl Instance {
    /// Builds a validated instance.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::UniverseMismatch`] when a set's universe
    /// differs from `universe`, and [`InstanceError::Uncoverable`] when
    /// some element appears in no set.
    pub fn new(universe: usize, sets: Vec<BitSet>) -> Result<Self, InstanceError> {
        for (i, s) in sets.iter().enumerate() {
            if s.universe_len() != universe {
                return Err(InstanceError::UniverseMismatch {
                    set: i,
                    got: s.universe_len(),
                    expected: universe,
                });
            }
        }
        let mut union = BitSet::new(universe);
        for s in &sets {
            union.union_with(s);
        }
        if union.count() != universe {
            let mut missing = BitSet::full(universe);
            missing.subtract(&union);
            return Err(InstanceError::Uncoverable {
                element: missing.first().unwrap_or(0),
            });
        }
        Ok(Instance { universe, sets })
    }

    /// Size of the universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The set family.
    pub fn sets(&self) -> &[BitSet] {
        &self.sets
    }

    /// Number of sets in the family.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Checks whether the given selection of set indices covers the
    /// universe.
    pub fn is_cover(&self, selection: &[usize]) -> bool {
        let mut covered = BitSet::new(self.universe);
        for &i in selection {
            if i >= self.sets.len() {
                return false;
            }
            covered.union_with(&self.sets[i]);
        }
        covered.count() == self.universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_instance() {
        let inst = Instance::new(
            3,
            vec![
                BitSet::from_indices(3, &[0, 1]),
                BitSet::from_indices(3, &[2]),
            ],
        )
        .unwrap();
        assert_eq!(inst.universe(), 3);
        assert_eq!(inst.num_sets(), 2);
        assert!(inst.is_cover(&[0, 1]));
        assert!(!inst.is_cover(&[0]));
        assert!(!inst.is_cover(&[0, 99]));
    }

    #[test]
    fn uncoverable_detected() {
        let err = Instance::new(3, vec![BitSet::from_indices(3, &[0, 1])]).unwrap_err();
        assert_eq!(err, InstanceError::Uncoverable { element: 2 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn universe_mismatch_detected() {
        let err = Instance::new(3, vec![BitSet::from_indices(4, &[0, 1, 2, 3])]).unwrap_err();
        assert!(matches!(err, InstanceError::UniverseMismatch { set: 0, .. }));
    }

    #[test]
    fn empty_universe_is_trivially_covered() {
        let inst = Instance::new(0, vec![]).unwrap();
        assert!(inst.is_cover(&[]));
    }
}

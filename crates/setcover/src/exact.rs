//! Exact minimum set cover by branch and bound.
//!
//! This is the "Optimal" bundle-generation baseline of Fig. 11, which the
//! paper obtains "through the exhaustive search". Plain exhaustion over
//! all subsets of the family is hopeless even for modest inputs;
//! branch-and-bound with an element-branching rule and a density lower
//! bound explores the same space implicitly and solves the paper-scale
//! instances in milliseconds.

use crate::{greedy_cover, BitSet, Instance};

/// Exact minimum set cover via branch and bound.
///
/// Branches on the lowest-index uncovered element (every cover must pick
/// one of the sets containing it), prunes with the density lower bound
/// `ceil(uncovered / max_set_size)` and seeds the incumbent with the
/// greedy cover.
///
/// `node_budget` caps the number of explored search nodes; when the budget
/// is exhausted the function returns `None` (the caller can fall back to
/// greedy). Passing `None` uses a generous default budget.
///
/// The returned selection is a true optimal cover (minimum cardinality).
pub fn exact_cover(inst: &Instance, node_budget: Option<u64>) -> Option<Vec<usize>> {
    if inst.universe() == 0 {
        return Some(Vec::new());
    }
    let budget = node_budget.unwrap_or(50_000_000);

    // Pre-compute, per element, the sets containing it.
    let mut containing: Vec<Vec<usize>> = vec![Vec::new(); inst.universe()];
    for (i, s) in inst.sets().iter().enumerate() {
        for e in s.iter() {
            containing[e].push(i);
        }
    }
    // Largest set size for the density bound.
    let max_size = inst.sets().iter().map(BitSet::count).max().unwrap_or(0);
    if max_size == 0 {
        return None; // validated instances with non-empty universe never hit this
    }

    let incumbent = greedy_cover(inst);
    let mut best_len = incumbent.len();
    let mut best = incumbent;

    struct Ctx<'a> {
        inst: &'a Instance,
        containing: &'a [Vec<usize>],
        max_size: usize,
        best_len: usize,
        best: Vec<usize>,
        nodes: u64,
        budget: u64,
        aborted: bool,
    }

    fn dfs(ctx: &mut Ctx<'_>, uncovered: &BitSet, chosen: &mut Vec<usize>) {
        if ctx.aborted {
            return;
        }
        ctx.nodes += 1;
        if ctx.nodes > ctx.budget {
            ctx.aborted = true;
            return;
        }
        let remaining = uncovered.count();
        if remaining == 0 {
            if chosen.len() < ctx.best_len {
                ctx.best_len = chosen.len();
                ctx.best = chosen.clone();
            }
            return;
        }
        // Density lower bound.
        let lb = chosen.len() + remaining.div_ceil(ctx.max_size);
        if lb >= ctx.best_len {
            return;
        }
        // Branch on the first uncovered element; order candidate sets by
        // decreasing marginal gain so good covers are found early.
        let Some(e) = uncovered.first() else {
            // `remaining > 0` guarantees an uncovered element exists.
            return;
        };
        let mut candidates: Vec<(usize, usize)> = ctx.containing[e]
            .iter()
            .map(|&i| (ctx.inst.sets()[i].intersection_count(uncovered), i))
            .collect();
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
        for (_, i) in candidates {
            let mut next = uncovered.clone();
            next.subtract(&ctx.inst.sets()[i]);
            chosen.push(i);
            dfs(ctx, &next, chosen);
            chosen.pop();
            if ctx.aborted {
                return;
            }
        }
    }

    let mut ctx = Ctx {
        inst,
        containing: &containing,
        max_size,
        best_len,
        best: Vec::new(),
        nodes: 0,
        budget,
        aborted: false,
    };
    std::mem::swap(&mut ctx.best, &mut best);
    let mut chosen = Vec::new();
    dfs(&mut ctx, &BitSet::full(inst.universe()), &mut chosen);
    if ctx.aborted {
        return None;
    }
    best_len = ctx.best_len;
    debug_assert_eq!(ctx.best.len(), best_len);
    debug_assert!(inst.is_cover(&ctx.best));
    Some(ctx.best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(universe: usize, families: &[&[usize]]) -> Instance {
        Instance::new(
            universe,
            families
                .iter()
                .map(|f| BitSet::from_indices(universe, f))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn beats_greedy_on_adversarial_instance() {
        // Greedy picks the big middle set and then needs 2 more; optimum
        // is the two disjoint halves.
        let i = inst(6, &[&[1, 2, 3, 4], &[0, 1, 2], &[3, 4, 5]]);
        let greedy = greedy_cover(&i);
        let exact = exact_cover(&i, None).unwrap();
        assert_eq!(exact.len(), 2);
        assert!(exact.len() <= greedy.len());
        assert!(i.is_cover(&exact));
    }

    #[test]
    fn exact_on_singleton_family() {
        let i = inst(3, &[&[0, 1, 2]]);
        assert_eq!(exact_cover(&i, None).unwrap(), vec![0]);
    }

    #[test]
    fn exact_never_worse_than_greedy_random() {
        // Pseudo-random instances, deterministic from the loop indices.
        for seed in 0..10u64 {
            let universe = 12;
            let mut fam: Vec<Vec<usize>> = Vec::new();
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut rnd = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for _ in 0..10 {
                let mut s = Vec::new();
                for e in 0..universe {
                    if rnd() % 3 == 0 {
                        s.push(e);
                    }
                }
                fam.push(s);
            }
            // Guarantee coverability.
            fam.push((0..universe).collect());
            let sets: Vec<BitSet> = fam
                .iter()
                .map(|f| BitSet::from_indices(universe, f))
                .collect();
            let i = Instance::new(universe, sets).unwrap();
            let g = greedy_cover(&i);
            let e = exact_cover(&i, None).unwrap();
            assert!(e.len() <= g.len(), "seed {seed}");
            assert!(i.is_cover(&e), "seed {seed}");
        }
    }

    #[test]
    fn ln_n_guarantee_observed() {
        // On every instance we try, greedy <= (ln n + 1) * exact.
        let i = inst(
            8,
            &[
                &[0, 1, 2, 3],
                &[4, 5],
                &[6],
                &[7],
                &[0, 4, 6],
                &[1, 5, 7],
                &[2, 3],
            ],
        );
        let g = greedy_cover(&i).len() as f64;
        let e = exact_cover(&i, None).unwrap().len() as f64;
        let bound = (8f64).ln() + 1.0;
        assert!(g <= bound * e + 1e-9);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // A zero node budget aborts before exploring anything.
        let families: Vec<Vec<usize>> = (0..16).map(|i| vec![i, (i + 1) % 16]).collect();
        let sets: Vec<BitSet> = families
            .iter()
            .map(|f| BitSet::from_indices(16, f))
            .collect();
        let i = Instance::new(16, sets).unwrap();
        assert_eq!(exact_cover(&i, Some(0)), None);
    }

    #[test]
    fn empty_universe() {
        let i = Instance::new(0, vec![]).unwrap();
        assert_eq!(exact_cover(&i, None).unwrap(), Vec::<usize>::new());
    }
}

//! A compact dynamic bitset over a fixed universe.

use std::fmt;

/// A fixed-capacity bitset over the universe `0..len`.
///
/// Candidate charging bundles are represented as bitsets over the sensor
/// indices, which makes the greedy and branch-and-bound cover algorithms
/// word-parallel.
///
/// # Example
///
/// ```
/// use bc_setcover::BitSet;
///
/// let mut s = BitSet::new(10);
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty bitset over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bitset containing the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut s = BitSet::new(len);
        for &i in indices {
            s.insert(i);
        }
        s
    }

    /// Creates a bitset containing every element of the universe.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Size of the universe (not the number of set bits).
    pub fn universe_len(&self) -> usize {
        self.len
    }

    /// Inserts element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes element `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether element `i` is present.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum() // cast-ok: popcount fits usize
    }

    /// Whether no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place set difference (`self &= !other`).
    pub fn subtract(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Number of elements in the intersection, without allocating.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.check_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize) // cast-ok: popcount fits usize
            .sum()
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.check_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Index of the lowest set bit, or `None` when empty.
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize); // cast-ok: bit index < 64
            }
        }
        None
    }

    /// Iterates over the present elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn check_same_universe(&self, other: &BitSet) {
        assert_eq!(
            self.len, other.len,
            "bitsets over different universes ({} vs {})",
            self.len, other.len
        );
    }

    /// Clears any bits beyond the universe in the last word.
    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a bitset sized to the largest index + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let len = indices.iter().max().map_or(0, |&m| m + 1);
        BitSet::from_indices(len, &indices)
    }
}

/// Iterator over the set bits of a [`BitSet`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize; // cast-ok: bit index < 64
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let s = BitSet::from_indices(5, &[4]);
        assert!(!s.contains(5));
        assert!(!s.contains(100));
    }

    #[test]
    fn full_has_exact_count() {
        for n in [0usize, 1, 63, 64, 65, 128, 200] {
            assert_eq!(BitSet::full(n).count(), n, "n={n}");
        }
    }

    #[test]
    fn union_subtract_intersect() {
        let a = BitSet::from_indices(100, &[1, 2, 3, 70]);
        let b = BitSet::from_indices(100, &[3, 70, 99]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 5);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 70]);
        assert_eq!(a.intersection_count(&b), 2);
    }

    #[test]
    fn subset_relation() {
        let small = BitSet::from_indices(50, &[10, 20]);
        let big = BitSet::from_indices(50, &[10, 20, 30]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
        assert!(BitSet::new(50).is_subset_of(&small));
    }

    #[test]
    fn first_and_iter_order() {
        let s = BitSet::from_indices(200, &[150, 3, 64, 128]);
        assert_eq!(s.first(), Some(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 128, 150]);
        assert_eq!(BitSet::new(10).first(), None);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: BitSet = [5usize, 9, 2].into_iter().collect();
        assert_eq!(s.universe_len(), 10);
        assert_eq!(s.count(), 3);
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(empty.universe_len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        BitSet::new(5).insert(5);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn mixed_universes_panic() {
        let mut a = BitSet::new(5);
        a.union_with(&BitSet::new(6));
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", BitSet::from_indices(5, &[1, 3])), "{1, 3}");
        assert_eq!(format!("{:?}", BitSet::new(5)), "{}");
    }
}

//! Smart dust: extreme density, where bundle charging shines.
//!
//! DARPA-style smart dust scatters hundreds of tiny sensors over a small
//! area (the paper's battlefield-monitoring motivation). At this density
//! a per-sensor tour is hopeless; bundle charging collapses hundreds of
//! stops into a handful. This example also demonstrates the lower-level
//! API: generating bundles directly, inspecting them, and assembling a
//! custom plan.
//!
//! ```text
//! cargo run --release --example smart_dust
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary: panics are fine
use bundle_charging::prelude::*;

fn main() {
    // 300 motes over 120 m x 120 m — a mean of ~20 neighbours within 15 m.
    let net = deploy::uniform(300, Aabb::square(120.0), 2.0, 11);
    println!(
        "{} motes, 120 m x 120 m, mean neighbours within 15 m: {:.1}\n",
        net.len(),
        net.mean_neighbors(15.0)
    );

    // Lower-level API: generate the bundles ourselves and inspect them.
    let r = 15.0;
    let bundles = generate_bundles(&net, Meters(r), BundleStrategy::Greedy);
    let biggest = bundles.iter().map(ChargingBundle::len).max().unwrap();
    println!(
        "greedy bundle generation at r = {r} m: {} bundles (largest holds {} motes)",
        bundles.len(),
        biggest
    );
    let histogram = {
        let mut h = std::collections::BTreeMap::new();
        for b in &bundles {
            *h.entry(b.len()).or_insert(0usize) += 1;
        }
        h
    };
    for (size, count) in histogram {
        println!("  {count:3} bundle(s) with {size:2} mote(s)");
    }

    // Compare against the grid baseline on the same network.
    let grid = generate_bundles(&net, Meters(r), BundleStrategy::Grid);
    println!(
        "grid baseline produces {} bundles ({}% more stops)\n",
        grid.len(),
        100 * (grid.len() - bundles.len()) / bundles.len().max(1)
    );

    // Full planners on the dust field.
    let cfg = PlannerConfig::paper_sim(r);
    for algo in Algorithm::ALL {
        let plan = planner::try_run(algo, &net, &cfg)
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        plan.validate(&net, &cfg.charging).expect("feasible plan");
        let m = plan.metrics(&cfg.energy);
        println!(
            "{:7}  stops: {:3}  tour: {:7.1} m  energy: {:9.1} J  ({:.0}% of SC)",
            algo.name(),
            m.num_stops,
            m.tour_length_m.0,
            m.total_energy_j.0,
            100.0 * m.total_energy_j
                / planner::single_charging(&net, &cfg)
                    .metrics(&cfg.energy)
                    .total_energy_j,
        );
    }
}

//! Radius tuning: find the optimal charging-bundle radius for a network.
//!
//! Section IV-C of the paper observes that the bundle radius trades
//! charging efficiency against tour length and recommends trying
//! different radii; this example automates that search for a given
//! deployment and prints the full trade-off curve.
//!
//! ```text
//! cargo run --release --example radius_tuning [n_sensors] [field_side_m]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary: panics are fine
use bundle_charging::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("n_sensors must be an integer"))
        .unwrap_or(150);
    let side: f64 = args
        .next()
        .map(|a| a.parse().expect("field_side_m must be a number"))
        .unwrap_or(300.0);

    let net = deploy::uniform(n, Aabb::square(side), 2.0, 99);
    println!(
        "{n} sensors over {side} m x {side} m  (mean neighbours within 30 m: {:.1})\n",
        net.mean_neighbors(30.0)
    );
    println!(
        "{:>8} {:>7} {:>10} {:>10} {:>12}   ",
        "r (m)", "stops", "tour (m)", "charge (s)", "energy (J)"
    );

    let radii = [5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0, 100.0];
    let mut best: Option<(f64, Joules)> = None;
    let mut rows = Vec::new();
    for r in radii {
        let cfg = PlannerConfig::paper_sim(r);
        let plan = planner::bundle_charging_opt(&net, &cfg);
        plan.validate(&net, &cfg.charging).expect("feasible plan");
        let m = plan.metrics(&cfg.energy);
        rows.push((r, m));
        if best.is_none_or(|(_, e)| m.total_energy_j < e) {
            best = Some((r, m.total_energy_j));
        }
    }
    let (best_r, _) = best.expect("at least one radius");
    for (r, m) in rows {
        println!(
            "{:>8.1} {:>7} {:>10.1} {:>10.1} {:>12.1}   {}",
            r,
            m.num_stops,
            m.tour_length_m.0,
            m.charge_time_s.0,
            m.total_energy_j.0,
            if r == best_r { "<== optimal" } else { "" }
        );
    }
    println!("\nPick r = {best_r} m for this deployment.");
}

//! Fault drill: execute one charging round under injected faults.
//!
//! Plans a BC-OPT tour, then steps it through the fault-injecting
//! executor with a mid-range fault rate and compares the three recovery
//! policies on the same fault schedule: what each one costs in extra
//! energy and recovery time, and who gets left behind.
//!
//! ```text
//! cargo run --release --example fault_drill
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary: panics are fine
use bundle_charging::prelude::*;

fn main() {
    let net = deploy::uniform(40, Aabb::square(300.0), 2.0, 9);
    let cfg = PlannerConfig::paper_sim(20.0);
    let plan = planner::bundle_charging_opt(&net, &cfg);
    let nominal = plan.metrics(&cfg.energy);
    println!(
        "40 sensors, 300 m x 300 m; nominal tour: {} stops, {:.0} J\n",
        nominal.num_stops, nominal.total_energy_j.0
    );

    let faults = FaultModel::with_rate(42, 0.3);
    println!(
        "{:>16} {:>11} {:>11} {:>9} {:>8} {:>8} {:>6}",
        "policy", "energy (J)", "extra (J)", "latency", "served", "strand", "dead"
    );
    for policy in RecoveryPolicy::ALL {
        let rep = Executor::new(&net, &cfg)
            .with_policy(policy)
            .execute(&plan, &faults, 0)
            .unwrap_or_else(|e| panic!("{policy}: {e}"));
        println!(
            "{:>16} {:>11.0} {:>11.0} {:>8.0} s {:>8} {:>8} {:>6}",
            policy.name(),
            rep.total_energy_j.0,
            rep.extra_energy_j.0,
            rep.recovery_latency_s.0,
            rep.served.len(),
            rep.stranded.len(),
            rep.fault_deaths.len(),
        );
    }

    // The same schedule always plays out identically — a drill can be
    // replayed exactly for postmortems.
    let again = Executor::new(&net, &cfg)
        .execute(&plan, &faults, 0)
        .unwrap();
    let first = Executor::new(&net, &cfg)
        .execute(&plan, &faults, 0)
        .unwrap();
    assert_eq!(format!("{first:?}"), format!("{again:?}"));
    println!("\nreplay check: same seed, byte-identical report");
}

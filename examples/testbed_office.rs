//! Testbed replay: the Section VII office experiment, end to end.
//!
//! Recreates the paper's physical validation on the simulated rig: a
//! robot car with a 3 W Powercast TX91501 charges six P2110-equipped
//! sensors at the published coordinates of a 5 m x 5 m office. Plans from
//! SC, BC and BC-OPT are *executed* tick by tick — including
//! opportunistic harvesting and optional measurement noise — and the
//! realized ledgers are compared.
//!
//! ```text
//! cargo run --release --example testbed_office
//! ```

use bundle_charging::prelude::*;
use bundle_charging::testbed::{office_network, TestbedRig};

fn main() {
    let net = office_network();
    println!("office testbed: {} sensors in 5 m x 5 m", net.len());
    for s in net.sensors() {
        println!("  {s}");
    }

    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>14}",
        "r (m)", "SC (J)", "BC (J)", "BC-OPT (J)", "BC-OPT saving"
    );
    for r in [0.25, 0.5, 0.8, 1.2, 1.6, 2.0] {
        let cfg = PlannerConfig::paper_testbed(r);
        let rig = TestbedRig::new(&net, &cfg);
        let e = |plan: &ChargingPlan| {
            let rep = rig.execute(plan);
            assert!(
                rep.all_fully_charged(),
                "a sensor was left undercharged at r = {r}"
            );
            rep.total_energy_j()
        };
        let sc = e(&planner::single_charging(&net, &cfg));
        let bc = e(&planner::bundle_charging(&net, &cfg));
        let opt = e(&planner::bundle_charging_opt(&net, &cfg));
        println!(
            "{:>6.2} {:>12.2} {:>12.2} {:>12.2} {:>13.1}%",
            r,
            sc,
            bc,
            opt,
            100.0 * (1.0 - opt / sc)
        );
    }

    // One noisy run: 10 % multiplicative harvest jitter.
    let cfg = PlannerConfig::paper_testbed(1.2);
    let plan = planner::bundle_charging_opt(&net, &cfg);
    let noisy = TestbedRig::new(&net, &cfg)
        .with_noise(0.10, 2024)
        .execute(&plan);
    println!(
        "\nnoisy replay at r = 1.2 m: worst sensor at {:.1}% of demand ({})",
        100.0 * noisy.fraction_charged().min(10.0),
        if noisy.all_fully_charged() {
            "fully charged"
        } else {
            "needs dwell margin"
        }
    );
    for (i, s) in noisy.sensors.iter().enumerate() {
        println!(
            "  s{i}: harvested {:7.4} J (demand {:.4} J)",
            s.harvested_j.0, s.demand_j.0
        );
    }
}

//! Quickstart: deploy a network, plan a bundle-charging tour, inspect it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary: panics are fine
use bundle_charging::prelude::*;

fn main() {
    // 60 rechargeable sensors, uniformly deployed over a 300 m x 300 m
    // field, each demanding 2 J per charging round (the paper's
    // simulation setting).
    let net = deploy::uniform(60, Aabb::square(300.0), 2.0, 42);
    println!("deployed: {net}");

    // Configure the planner with the paper's charging and energy models
    // and a 25 m bundle radius.
    let cfg = PlannerConfig::paper_sim(25.0);

    // Compare the naive per-sensor tour with bundle charging.
    for algo in Algorithm::ALL {
        let plan = planner::try_run(algo, &net, &cfg)
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        plan.validate(&net, &cfg.charging)
            .expect("planner produced an infeasible plan");
        let m = plan.metrics(&cfg.energy);
        println!(
            "{:7}  stops: {:3}  tour: {:7.1} m  charge: {:7.1} s  energy: {:8.1} J",
            algo.name(),
            m.num_stops,
            m.tour_length_m.0,
            m.charge_time_s.0,
            m.total_energy_j.0,
        );
    }

    // Inspect the winning plan's stops.
    let plan = planner::bundle_charging_opt(&net, &cfg);
    println!("\nBC-OPT itinerary:");
    for (i, stop) in plan.stops.iter().enumerate() {
        println!(
            "  #{:<2} park at {}  charge {:2} sensor(s) for {:6.1} s",
            i,
            stop.anchor(),
            stop.bundle.len(),
            stop.dwell.0,
        );
    }
}

//! Charger fleet sizing: makespan vs energy as chargers are added.
//!
//! A single charger's round over a dense network can take hours — too
//! slow when sensors drain fast. This example sizes a fleet: the field
//! is partitioned among k chargers, each plans its region with BC-OPT,
//! and the fleet's makespan (slowest charger) is traded against the
//! extra energy of running several tours.
//!
//! ```text
//! cargo run --release --example charger_fleet [n_sensors]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary: panics are fine
use bundle_charging::core::{plan_fleet, planner::Algorithm};
use bundle_charging::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n_sensors must be an integer"))
        .unwrap_or(150);
    let net = deploy::uniform(n, Aabb::square(400.0), 2.0, 77);
    let cfg = PlannerConfig::paper_sim(30.0);
    let speed = 1.0; // m/s

    println!("{n} sensors, 400 m x 400 m, bundle radius 30 m, BC-OPT per region\n");
    println!(
        "{:>9} {:>12} {:>14} {:>14} {:>18}",
        "chargers", "makespan", "fleet energy", "vs 1 charger", "per-charger stops"
    );
    let mut baseline: Option<(Seconds, Joules)> = None;
    for k in [1usize, 2, 3, 4, 6, 8] {
        let fleet = plan_fleet(&net, &cfg, Algorithm::BcOpt, k);
        fleet
            .validate(&cfg.charging)
            .expect("fleet plans must be feasible");
        let makespan = fleet.makespan_s(speed);
        let energy = fleet.total_energy_j(&cfg.energy);
        let (m0, e0) = *baseline.get_or_insert((makespan, energy));
        let stops: Vec<String> = fleet
            .plans
            .iter()
            .map(|p| p.num_charging_stops().to_string())
            .collect();
        println!(
            "{:>9} {:>10.0} s {:>12.0} J {:>+12.1} % {:>18}",
            fleet.num_chargers(),
            makespan.0,
            energy.0,
            100.0 * (energy / e0 - 1.0),
            stops.join("+"),
        );
        let _ = m0;
    }
    println!(
        "\nMakespan collapses roughly linearly with fleet size while the \
         energy premium stays modest — the knob to turn when recharge \
         deadlines, not joules, are binding."
    );
}

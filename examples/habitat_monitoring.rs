//! Habitat monitoring: clustered deployments, the workload bundle
//! charging is built for.
//!
//! The paper's introduction motivates dense pockets of sensors (jungle
//! habitat monitoring, DARPA smart dust). Sensors cluster around points
//! of interest — water holes, nests, trails — and a mobile charger
//! refuels them periodically. This example shows how the advantage of
//! bundle charging over per-sensor charging widens as deployments get
//! more clustered.
//!
//! ```text
//! cargo run --release --example habitat_monitoring
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary: panics are fine
use bundle_charging::prelude::*;

fn main() {
    let field = Aabb::square(600.0);
    let n = 120;
    let demand = 2.0;
    let cfg = PlannerConfig::paper_sim(30.0);

    println!("{n} sensors, 600 m x 600 m reserve, bundle radius 30 m\n");
    println!(
        "{:<28} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "deployment", "SC (J)", "BC-OPT (J)", "saving", "stops", "tour (m)"
    );

    // From fully spread out to tightly clustered around 6 waterholes.
    let scenarios: Vec<(String, Network)> = vec![
        (
            "uniform (spread out)".into(),
            deploy::uniform(n, field, demand, 7),
        ),
        (
            "12 loose clusters".into(),
            deploy::clusters(n, 12, 40.0, field, demand, 7),
        ),
        (
            "6 clusters".into(),
            deploy::clusters(n, 6, 25.0, field, demand, 7),
        ),
        (
            "6 tight clusters".into(),
            deploy::clusters(n, 6, 10.0, field, demand, 7),
        ),
    ];

    for (name, net) in scenarios {
        let sc = planner::single_charging(&net, &cfg);
        let opt = planner::bundle_charging_opt(&net, &cfg);
        opt.validate(&net, &cfg.charging).expect("feasible plan");
        let e_sc = sc.metrics(&cfg.energy).total_energy_j;
        let m = opt.metrics(&cfg.energy);
        println!(
            "{:<28} {:>9.0} {:>9.0} {:>9.1}% {:>7}/{:<3} {:>8.0}",
            name,
            e_sc,
            m.total_energy_j,
            100.0 * (1.0 - m.total_energy_j / e_sc),
            m.num_stops,
            n,
            m.tour_length_m,
        );
    }

    println!(
        "\nThe tighter the clusters, the fewer stops the charger needs and \
         the larger the energy saving over per-sensor charging."
    );
}

//! Obstacle-aware charging: routing the charger around buildings.
//!
//! The paper assumes an obstacle-free field, but defines inter-anchor
//! distance as a *shortest path* (Table I). This example exercises that
//! generality: a field with two buildings, sensors deployed around them,
//! and the tour ordered by real driveable distances (visibility-graph
//! shortest paths). RF still crosses the buildings — only the wheels
//! must go around.
//!
//! ```text
//! cargo run --release --example obstacle_field
//! ```

use bundle_charging::core::{plan_with_terrain, planner::Algorithm, Terrain, TerrainRoute};
use bundle_charging::geom::{Point, Polygon};
use bundle_charging::prelude::*;
use bundle_charging::sim::svg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A long wall nearly splitting the field, plus a square depot.
    let terrain = Terrain::new(vec![
        Polygon::rectangle(Point::new(140.0, 0.0), Point::new(160.0, 240.0)),
        Polygon::rectangle(Point::new(210.0, 260.0), Point::new(250.0, 295.0)),
    ]);

    // Deploy 80 sensors, discarding any that would fall inside a building.
    let raw = deploy::uniform(80, Aabb::square(300.0), 2.0, 19);
    let coords: Vec<(f64, f64)> = raw
        .sensors()
        .iter()
        .filter(|s| !terrain.inside_obstacle(s.pos))
        .map(|s| (s.pos.x, s.pos.y))
        .collect();
    let net = deploy::from_coords(&coords, Aabb::square(300.0), 2.0);
    println!(
        "{} sensors around {} buildings in 300 m x 300 m",
        net.len(),
        terrain.obstacles().len()
    );

    let cfg = PlannerConfig::paper_sim(30.0);

    // Naive: plan ignoring the buildings, then drive the real field.
    let naive = planner::bundle_charging(&net, &cfg);
    let naive_route = TerrainRoute::trace(&naive, &terrain);

    // Terrain-aware: order stops by routed distances from the start.
    let (plan, route) = plan_with_terrain(&net, &cfg, &terrain, Algorithm::Bc);
    plan.validate(&net, &cfg.charging)?;

    println!(
        "straight-line tour (impossible to drive): {:.0} m",
        naive.tour_length().0
    );
    let illegal = naive
        .stops
        .iter()
        .filter(|s| terrain.inside_obstacle(s.anchor()))
        .count();
    println!(
        "naive order, traced over the field:       {:.0} m ({:.0} J; parks {} time(s) INSIDE a building)",
        naive_route.length_m.0,
        naive_route.metrics(&naive, &cfg.energy).total_energy_j.0,
        illegal,
    );
    let legal = plan
        .stops
        .iter()
        .all(|s| !terrain.inside_obstacle(s.anchor()));
    println!(
        "terrain-aware order, actually driven:     {:.0} m ({:.0} J; all stops driveable: {legal})",
        route.length_m.0,
        route.metrics(&plan, &cfg.energy).total_energy_j.0,
    );
    let detour_legs = route.legs.iter().filter(|l| l.len() > 2).count();
    println!("legs that detour around a building:       {detour_legs}");

    let out = std::path::PathBuf::from("results/obstacle_field.svg");
    std::fs::create_dir_all("results")?;
    std::fs::write(
        &out,
        svg::render_terrain_scene(&net, &plan, &terrain, &route, &svg::SvgStyle::default()),
    )?;
    println!("rendered {}", out.display());
    Ok(())
}

//! Site survey workflow: load measured sensor positions from CSV, plan,
//! split into battery-feasible sorties, and export artifacts.
//!
//! A downstream user rarely generates deployments — they measure them.
//! This example writes a survey CSV (standing in for real survey data),
//! loads it back through the I/O module, plans a BC-OPT tour, splits it
//! into sorties for a charger with a finite battery, and exports both
//! the tightened plan's CSV and an SVG rendering.
//!
//! ```text
//! cargo run --release --example site_survey [survey.csv]
//! ```

use bundle_charging::core::{split_into_sorties, tighten};
use bundle_charging::prelude::*;
use bundle_charging::sim::svg;
use bundle_charging::wsn::io;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::PathBuf::from("results");
    std::fs::create_dir_all(&out_dir)?;

    // 1. Obtain the survey file: first CLI argument, or synthesise one.
    let survey_path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let synthetic = deploy::clusters(90, 7, 18.0, Aabb::square(400.0), 2.0, 31);
            let p = out_dir.join("site_survey_input.csv");
            io::network_to_csv(&synthetic, &p)?;
            println!("no survey given; synthesised {}", p.display());
            p
        }
    };

    // 2. Load it back (10 m field padding around the measured positions).
    let net = io::network_from_csv(&survey_path, 10.0)?;
    println!(
        "loaded {} sensors from {} (field {})",
        net.len(),
        survey_path.display(),
        net.field()
    );

    // 3. Plan and tighten.
    let cfg = PlannerConfig::paper_sim(25.0);
    let mut plan = planner::bundle_charging_opt(&net, &cfg);
    plan.validate(&net, &cfg.charging)?;
    let m = plan.metrics(&cfg.energy);
    println!(
        "BC-OPT: {} stops, {:.0} m tour, {:.0} s charging, {:.0} J total",
        m.num_stops, m.tour_length_m.0, m.charge_time_s.0, m.total_energy_j.0
    );
    let trep = tighten::tighten_dwells(&mut plan, &net, &cfg.charging, 50);
    println!(
        "cross-stop tightening saved {:.1}% of dwell time",
        100.0 * trep.saving()
    );

    // 4. Split into sorties for a charger with a 12 kJ battery.
    let budget = 12_000.0;
    match split_into_sorties(&plan, net.base(), &cfg.energy, budget) {
        Ok(sp) => {
            println!(
                "charger battery {budget:.0} J -> {} sortie(s), worst {:.0} J, total {:.0} J",
                sp.len(),
                sp.max_sortie_energy_j().0,
                sp.total_energy_j.0
            );
            for (i, s) in sp.sorties.iter().enumerate() {
                println!(
                    "  sortie {i}: stops {:?}, {:.0} m, {:.0} s dwell, {:.0} J",
                    s.stops, s.distance_m.0, s.dwell_s.0, s.energy_j.0
                );
            }
        }
        Err(e) => println!("cannot split under {budget:.0} J: {e}"),
    }

    // 5. Export artifacts.
    let svg_path = out_dir.join("site_survey_plan.svg");
    svg::save_scene(&net, Some(&plan), None, &svg::SvgStyle::default(), &svg_path)?;
    println!("rendered plan to {}", svg_path.display());
    Ok(())
}

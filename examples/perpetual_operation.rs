//! Perpetual operation: a day in the life of a rechargeable network.
//!
//! The paper's promise is that wireless recharging keeps a WRSN alive
//! indefinitely. This example runs the multi-round lifetime simulation:
//! sensors drain continuously, a charging round is dispatched whenever a
//! quarter of them fall to half charge, and the mobile charger replays
//! the planner's tour in real time. It also applies the cross-stop
//! dwell-tightening extension and shows what it saves per round.
//!
//! ```text
//! cargo run --release --example perpetual_operation
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary: panics are fine
use bundle_charging::core::tighten;
use bundle_charging::prelude::*;
use bundle_charging::sim::lifetime::{simulate, LifetimeConfig};

fn main() {
    let n = 60;
    let net = deploy::uniform(n, Aabb::square(250.0), 2.0, 23);
    println!("{n} sensors, 250 m x 250 m, 2 J batteries, 0.2 mW drain, 24 h horizon\n");

    println!(
        "{:>8} {:>7} {:>14} {:>13} {:>9} {:>12}",
        "planner", "rounds", "energy (J)", "availability", "deaths", "min batt (J)"
    );
    for algo in Algorithm::ALL {
        let cfg = LifetimeConfig::paper_sim(n, 25.0, algo);
        let rep = simulate(&net, &cfg);
        println!(
            "{:>8} {:>7} {:>14.0} {:>12.2}% {:>9} {:>12.3}",
            algo.name(),
            rep.rounds,
            rep.charger_energy_j,
            100.0 * rep.availability,
            rep.sensors_ever_dead,
            rep.min_battery_j,
        );
    }

    // The Eq. 3 extension: credit sensors for energy received from every
    // stop of the tour, then shrink dwells to the minimal feasible point.
    let cfg = PlannerConfig::paper_sim(25.0);
    let mut plan = planner::bundle_charging_opt(&net, &cfg);
    let before = plan.metrics(&cfg.energy);
    let report = tighten::tighten_dwells(&mut plan, &net, &cfg.charging, 50);
    let after = plan.metrics(&cfg.energy);
    println!(
        "\ncross-stop dwell tightening ({} sweeps): dwell {:.0} s -> {:.0} s \
         ({:.1}% saved), round energy {:.0} J -> {:.0} J",
        report.sweeps,
        report.dwell_before_s.0,
        report.dwell_after_s.0,
        100.0 * report.saving(),
        before.total_energy_j.0,
        after.total_energy_j.0,
    );
    tighten::validate_cross_credit(&plan, &net, &cfg.charging)
        .expect("tightened plan must still fully charge everyone");
    println!("tightened plan verified: every sensor still reaches its demand.");
}
